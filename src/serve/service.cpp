#include "serve/service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/analyses.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/artifact_store.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace repro::serve {

namespace {

/// The report queries the service answers; "stats"/"ping"/"shutdown" are
/// admin queries handled separately.
constexpr const char* kReportQueries[] = {"table1",     "figure1", "table2",
                                          "figure2",    "section421",
                                          "section43"};

bool is_report_query(std::string_view name) {
  for (const char* q : kReportQueries) {
    if (name == q) return true;
  }
  return false;
}

bool takes_xis(std::string_view name) {
  return name == "table2" || name == "figure2";
}

/// Same fixed-point identity Pipeline uses: xi is a config constant, so a
/// micro-unit key is exact and two spellings of 0.1 collide correctly.
std::uint64_t xi_cache_key(double xi) {
  return static_cast<std::uint64_t>(std::llround(xi * 1e6));
}

double finite_number(const obs::JsonValue& value, const char* field) {
  if (!value.is_number()) {
    throw Error(std::string(field) + " must be a number");
  }
  const double v = value.number();
  if (!std::isfinite(v)) {
    throw Error(std::string(field) + " must be finite");
  }
  return v;
}

double rate_in_unit(const obs::JsonValue& value, const char* field) {
  const double v = finite_number(value, field);
  if (v < 0.0 || v > 1.0) {
    throw Error(std::string(field) + " outside [0, 1]");
  }
  return v;
}

double xi_in_range(const obs::JsonValue& value) {
  const double v = finite_number(value, "xi");
  if (!(v > 0.0 && v < 1.0)) throw Error("xi outside (0, 1)");
  return v;
}

/// Echo-ready JSON for the request id: numbers and strings pass through,
/// anything else is rejected (ids must be cheap to reflect verbatim).
std::string id_json(const obs::JsonValue& value) {
  if (value.is_number()) return obs::json_number(value.number());
  if (value.is_string()) {
    return "\"" + obs::json_escape(value.str()) + "\"";
  }
  throw Error("id must be a number or string");
}

std::string error_json(const std::string& id, std::string_view message) {
  std::string out = "{";
  if (!id.empty()) out += "\"id\":" + id + ",";
  out += "\"ok\":false,\"error\":\"";
  out += obs::json_escape(message);
  out += "\"}";
  return out;
}

/// Parses one request object into a validated QueryRequest. Throws
/// repro::Error (including ParseError from parse_json) on anything invalid;
/// handle_line turns those into structured error responses.
QueryRequest parse_request(std::string_view line, Scale default_scale) {
  const obs::JsonValue doc = obs::parse_json(line);
  if (!doc.is_object()) throw Error("request must be a JSON object");

  QueryRequest request;
  request.scale = default_scale;
  bool have_xi = false;
  bool have_xis = false;
  for (const auto& [key, value] : doc.object()) {
    if (key == "id") {
      request.id = id_json(value);
    } else if (key == "query") {
      if (!value.is_string()) throw Error("query must be a string");
      request.query = value.str();
    } else if (key == "scale") {
      if (!value.is_string()) throw Error("scale must be a string");
      const auto parsed = parse_scale(value.str());
      if (!parsed.has_value()) {
        throw Error("unknown scale '" + value.str() + "'");
      }
      request.scale = *parsed;
    } else if (key == "xi") {
      have_xi = true;
      request.xis = {xi_in_range(value)};
    } else if (key == "xis") {
      have_xis = true;
      if (!value.is_array() || value.size() == 0) {
        throw Error("xis must be a non-empty array");
      }
      request.xis.clear();
      for (const obs::JsonValue& entry : value.array()) {
        request.xis.push_back(xi_in_range(entry));
      }
    } else if (key == "fault") {
      if (value.is_string()) {
        if (value.str() == "none") {
          request.plan = fault::FaultPlan::none();
        } else if (value.str() == "chaos") {
          request.plan = fault::FaultPlan::chaos();
        } else {
          throw Error("fault must be \"none\", \"chaos\", or an intensity");
        }
      } else {
        request.plan = fault::FaultPlan::chaos().scaled_by(
            finite_number(value, "fault"));
      }
    } else if (key == "fault_seed") {
      request.plan.seed =
          static_cast<std::uint64_t>(finite_number(value, "fault_seed"));
    } else if (key == "flap_rate") {
      request.plan.route.flap_rate = rate_in_unit(value, "flap_rate");
    } else if (key == "missing_ptr_rate") {
      request.plan.rdns.missing_ptr_rate =
          rate_in_unit(value, "missing_ptr_rate");
    } else if (key == "store_corrupt_rate") {
      request.plan.store.corrupt_rate =
          rate_in_unit(value, "store_corrupt_rate");
    } else {
      throw Error("unknown field '" + key + "'");
    }
  }

  if (have_xi && have_xis) throw Error("give xi or xis, not both");
  if (request.query.empty()) throw Error("missing query");
  const bool admin = request.query == "stats" || request.query == "ping" ||
                     request.query == "shutdown";
  if (!admin && !is_report_query(request.query)) {
    throw Error("unknown query '" + request.query + "'");
  }
  if ((have_xi || have_xis) && !takes_xis(request.query)) {
    throw Error("query '" + request.query + "' takes no xi");
  }
  if (takes_xis(request.query) && request.xis.empty()) {
    request.xis = {0.1, 0.9};  // the paper's standard settings
  }
  // Clamp anything representable-but-degenerate the same way from_env does.
  request.plan = request.plan.sanitized();
  return request;
}

std::string histogram_json(const obs::Histogram& h) {
  return "{\"count\":" + std::to_string(h.count()) +
         ",\"p50\":" + obs::json_number(h.p50()) +
         ",\"p90\":" + obs::json_number(h.p90()) +
         ",\"p99\":" + obs::json_number(h.p99()) + "}";
}

}  // namespace

ReportService::ReportService(ServiceConfig config)
    : config_(std::move(config)),
      resolver_(config_.artifacts, config_.max_resident_pipelines) {}

std::uint64_t ReportService::render_key(const QueryRequest& request) {
  store::Fnv1a h;
  h.mix(measurement_digest(Scenario::at_scale(request.scale)))
      .mix(request.plan.to_json())
      .mix(std::string_view(request.query));
  for (const double xi : request.xis) h.mix(xi_cache_key(xi));
  return h.digest();
}

std::string ReportService::compute_render(const QueryRequest& request) {
  const Scenario scenario = Scenario::at_scale(request.scale);
  const std::shared_ptr<Pipeline> pipeline =
      resolver_.pipeline(scenario, request.plan);
  const std::span<const double> xis(request.xis);
  if (request.query == "table1") return render(table1_study(*pipeline));
  if (request.query == "figure1") return render(figure1_study(*pipeline));
  if (request.query == "table2") {
    return render(table2_study(*pipeline, xis));
  }
  if (request.query == "figure2") {
    return render(figure2_study(*pipeline, xis));
  }
  if (request.query == "section421") {
    return render(section421_study(*pipeline));
  }
  if (request.query == "section43") return render(section43_study(*pipeline));
  throw Error("unknown query '" + request.query + "'");  // unreachable
}

std::string ReportService::fetch_render(const QueryRequest& request,
                                        bool& cached) {
  const std::uint64_t key = render_key(request);
  {
    std::unique_lock<std::mutex> lock(render_mutex_);
    for (;;) {
      const auto it = render_index_.find(key);
      if (it != render_index_.end()) {
        render_lru_.splice(render_lru_.begin(), render_lru_, it->second);
        obs::metrics().counter("serve.hit").add(1);
        cached = true;
        return *it->second->second;
      }
      if (!render_inflight_.contains(key)) break;
      // Another thread is rendering this exact query: park until it
      // publishes, then re-check. A waiter paid (most of) the compute
      // latency, so its response reports cached=false.
      obs::metrics().counter("serve.inflight_waits").add(1);
      render_cv_.wait(lock);
    }
    render_inflight_.insert(key);
  }

  obs::metrics().counter("serve.miss").add(1);
  cached = false;
  std::string rendered;
  try {
    rendered = compute_render(request);
  } catch (...) {
    std::lock_guard<std::mutex> lock(render_mutex_);
    render_inflight_.erase(key);
    render_cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(render_mutex_);
  render_inflight_.erase(key);
  render_lru_.emplace_front(key,
                            std::make_shared<const std::string>(rendered));
  render_index_[key] = render_lru_.begin();
  while (render_lru_.size() > config_.max_cached_renders) {
    render_index_.erase(render_lru_.back().first);
    render_lru_.pop_back();
    obs::metrics().counter("serve.render_evicted").add(1);
  }
  render_cv_.notify_all();
  return rendered;
}

std::string ReportService::stats_json() const {
  std::string out = "\"serve\":{";
  const auto c = [](const char* name) {
    return std::to_string(obs::metrics().counter(name).value());
  };
  out += "\"queries\":" + c("serve.queries") + ",\"hit\":" + c("serve.hit") +
         ",\"miss\":" + c("serve.miss") +
         ",\"inflight_waits\":" + c("serve.inflight_waits") +
         ",\"errors\":" + c("serve.errors") +
         ",\"pipeline_hit\":" + c("serve.pipeline_hit") +
         ",\"pipeline_built\":" + c("serve.pipeline_built");
  {
    std::lock_guard<std::mutex> lock(render_mutex_);
    out += ",\"renders_cached\":" + std::to_string(render_lru_.size());
  }
  out += ",\"pipelines_resident\":" +
         std::to_string(resolver_.resident_count());
  out += ",\"query_ms\":" +
         histogram_json(obs::metrics().histogram("serve.query_ms"));
  out += "}";
  if (const store::ArtifactStore* artifacts = resolver_.artifact_store()) {
    out += ",\"store\":" + store::occupancy_json(*artifacts);
  } else {
    out += ",\"store\":null";
  }
  return out;
}

QueryResponse ReportService::execute(const QueryRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  obs::ScopedSpan span("serve.query");
  obs::metrics().counter("serve.queries").add(1);
  QueryResponse response;

  const auto elapsed_ms = [&start]() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  const auto finish_line = [&](std::string body) {
    response.ms = elapsed_ms();
    // Recorded directly (not via ScopedTimer, which only records when
    // tracing is on): the p50/p99 SLO must be measurable in production
    // mode, tracing off.
    obs::metrics().histogram("serve.query_ms").record(response.ms);
    std::string out = "{";
    if (!request.id.empty()) out += "\"id\":" + request.id + ",";
    out += "\"ok\":true,\"query\":\"" + request.query + "\"" + body + "}";
    response.json = std::move(out);
    response.ok = true;
  };

  try {
    if (request.query == "ping") {
      finish_line(",\"scale\":\"" +
                  std::string(to_string(config_.default_scale)) + "\"");
      return response;
    }
    if (request.query == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      finish_line("");
      return response;
    }
    if (request.query == "stats") {
      finish_line("," + stats_json());
      return response;
    }
    response.render = fetch_render(request, response.cached);
    const double ms = elapsed_ms();
    response.ms = ms;
    obs::metrics().histogram("serve.query_ms").record(ms);
    char ms_text[64];
    std::snprintf(ms_text, sizeof(ms_text), "%.3f", ms);
    std::string out = "{";
    if (!request.id.empty()) out += "\"id\":" + request.id + ",";
    out += "\"ok\":true,\"query\":\"" + request.query + "\",\"cached\":";
    out += response.cached ? "true" : "false";
    out += ",\"ms\":";
    out += ms_text;
    out += ",\"render\":\"" + obs::json_escape(response.render) + "\"}";
    response.json = std::move(out);
    response.ok = true;
    return response;
  } catch (const std::exception& error) {
    obs::metrics().counter("serve.errors").add(1);
    response.ok = false;
    response.render.clear();
    response.ms = elapsed_ms();
    obs::metrics().histogram("serve.query_ms").record(response.ms);
    response.json = error_json(request.id, error.what());
    return response;
  }
}

QueryResponse ReportService::handle_line(std::string_view line) {
  if (line.size() > config_.max_request_bytes) {
    // Reject before parsing: an adversarially huge line must cost O(1).
    obs::metrics().counter("serve.queries").add(1);
    obs::metrics().counter("serve.errors").add(1);
    QueryResponse response;
    response.json = error_json(
        "", "request too large (" + std::to_string(line.size()) + " > " +
                std::to_string(config_.max_request_bytes) + " bytes)");
    return response;
  }
  QueryRequest request;
  try {
    request = parse_request(line, config_.default_scale);
  } catch (const std::exception& error) {
    obs::metrics().counter("serve.queries").add(1);
    obs::metrics().counter("serve.errors").add(1);
    QueryResponse response;
    response.json = error_json("", error.what());
    return response;
  }
  return execute(request);
}

void ReportService::serve_stream(std::istream& in, std::ostream& out) {
  // Sequential by design: stdio mode is the scriptable/debuggable path
  // (responses land in request order), concurrency comes from the socket
  // mode and from in-process callers sharing one service.
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) continue;
    const QueryResponse response = handle_line(line);
    out << response.json << '\n' << std::flush;
  }
}

void ReportService::serve_unix_socket(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(listener >= 0, "socket() failed for " + path);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 64) != 0) {
    ::close(listener);
    throw Error("cannot bind/listen on " + path);
  }

  {
    // Connection handlers run on this local pool; its destructor joins
    // them, so the daemon never returns with a handler mid-response.
    ThreadPool pool(config_.workers > 0 ? config_.workers
                                        : default_thread_count());
    while (!shutdown_requested()) {
      const int conn = ::accept(listener, nullptr, nullptr);
      if (conn < 0) {
        if (shutdown_requested()) break;
        if (errno == EINTR) continue;
        break;  // listener broken: stop accepting, drain handlers
      }
      if (shutdown_requested()) {
        ::close(conn);
        break;
      }
      pool.submit([this, conn, listener]() {
        std::string buffer;
        char chunk[4096];
        for (;;) {
          const ssize_t n = ::recv(conn, chunk, sizeof(chunk), 0);
          if (n <= 0) break;
          buffer.append(chunk, static_cast<std::size_t>(n));
          std::size_t newline;
          while ((newline = buffer.find('\n')) != std::string::npos) {
            const std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (line.empty()) continue;
            const QueryResponse response = handle_line(line);
            std::string out = response.json + "\n";
            std::size_t sent = 0;
            while (sent < out.size()) {
              const ssize_t wrote = ::send(conn, out.data() + sent,
                                           out.size() - sent, MSG_NOSIGNAL);
              if (wrote <= 0) break;
              sent += static_cast<std::size_t>(wrote);
            }
          }
          if (shutdown_requested()) {
            // Unblock the accept loop so the daemon can exit.
            ::shutdown(listener, SHUT_RDWR);
            break;
          }
        }
        ::close(conn);
      });
    }
  }
  ::close(listener);
  ::unlink(path.c_str());
}

}  // namespace repro::serve
