// ArtifactResolver: pipeline residency for the report service.
//
// The batch pipeline answers one (Scenario, FaultPlan) world per process.
// The resident service answers many: each query names a world, and the
// resolver keeps a bounded LRU set of Pipeline instances alive over one
// shared ArtifactStore, constructing them on demand with single-flight
// coordination (N concurrent queries for a brand-new world cost one
// construction, not N).
//
// Residency is keyed by (measurement_digest(scenario), plan.to_json()) --
// the FULL fault-plan JSON, not just measurement_json(). Two plans that
// share measurement_json() (e.g. the clean baseline and a route-flap-only
// plan) still get distinct resident pipelines, because route/rdns knobs
// change live-engine results (the S4.2.1 peering study) even though every
// persisted artifact is shared byte-for-byte between them through the
// store's world_digest keying. In other words: the store deduplicates
// measurement, the resolver deduplicates residency, and the two keys are
// deliberately different widths.
//
// Eviction is safe at any moment: callers hold shared_ptr<Pipeline>, so an
// evicted-but-in-use pipeline stays alive until its last query finishes;
// only the resolver's reference is dropped. Everything the pipeline had
// published persists in the store, so a re-resolved world starts warm.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/pipeline.h"

namespace repro::serve {

class ArtifactResolver {
 public:
  /// `artifacts` may be nullptr (no persistence: every cold world computes
  /// in memory, warm reuse then only spans the resident pipelines).
  /// `max_resident` bounds the LRU set; at least 1.
  ArtifactResolver(std::shared_ptr<store::ArtifactStore> artifacts,
                   std::size_t max_resident);

  /// Residency key: measurement digest of the scenario mixed with the full
  /// fault-plan JSON (see the header comment for why it is wider than the
  /// store's world digest).
  static std::uint64_t world_key(const Scenario& scenario,
                                 const fault::FaultPlan& plan);

  /// The resident pipeline for this world, constructing it on demand.
  /// Single-flight: concurrent callers for one missing world park until the
  /// builder publishes (or fails, in which case a waiter takes over the
  /// build). Counters: serve.pipeline_hit / serve.pipeline_built /
  /// serve.pipeline_evicted, gauge serve.pipelines_resident.
  std::shared_ptr<Pipeline> pipeline(const Scenario& scenario,
                                     const fault::FaultPlan& plan);

  std::size_t resident_count() const;
  store::ArtifactStore* artifact_store() const noexcept {
    return artifacts_.get();
  }

  ArtifactResolver(const ArtifactResolver&) = delete;
  ArtifactResolver& operator=(const ArtifactResolver&) = delete;

 private:
  std::shared_ptr<store::ArtifactStore> artifacts_;
  std::size_t max_resident_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Front = most recently used.
  std::list<std::pair<std::uint64_t, std::shared_ptr<Pipeline>>> recency_;
  std::unordered_map<std::uint64_t, decltype(recency_)::iterator> index_;
  std::unordered_set<std::uint64_t> inflight_;
};

}  // namespace repro::serve
