#include "serve/resolver.h"

#include <algorithm>

#include "obs/metrics.h"
#include "store/artifact_store.h"

namespace repro::serve {

ArtifactResolver::ArtifactResolver(
    std::shared_ptr<store::ArtifactStore> artifacts, std::size_t max_resident)
    : artifacts_(std::move(artifacts)),
      max_resident_(std::max<std::size_t>(max_resident, 1)) {}

std::uint64_t ArtifactResolver::world_key(const Scenario& scenario,
                                          const fault::FaultPlan& plan) {
  return store::Fnv1a()
      .mix(measurement_digest(scenario))
      .mix(plan.to_json())
      .digest();
}

std::shared_ptr<Pipeline> ArtifactResolver::pipeline(
    const Scenario& scenario, const fault::FaultPlan& plan) {
  const std::uint64_t key = world_key(scenario, plan);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      const auto it = index_.find(key);
      if (it != index_.end()) {
        recency_.splice(recency_.begin(), recency_, it->second);
        obs::metrics().counter("serve.pipeline_hit").add(1);
        return it->second->second;
      }
      if (!inflight_.contains(key)) break;
      // Another thread is constructing this world; park until it publishes
      // (or gives up -- then the loop re-checks and this thread builds).
      cv_.wait(lock);
    }
    inflight_.insert(key);
  }

  // Construct outside the lock: a cold world can take seconds, and other
  // worlds' queries must keep flowing meanwhile.
  std::shared_ptr<Pipeline> built;
  try {
    built = std::make_shared<Pipeline>(scenario, plan, artifacts_);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
    cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  inflight_.erase(key);
  recency_.emplace_front(key, built);
  index_[key] = recency_.begin();
  obs::metrics().counter("serve.pipeline_built").add(1);
  while (recency_.size() > max_resident_) {
    // In-use pipelines survive eviction via their callers' shared_ptrs.
    index_.erase(recency_.back().first);
    recency_.pop_back();
    obs::metrics().counter("serve.pipeline_evicted").add(1);
  }
  obs::metrics().gauge("serve.pipelines_resident")
      .set(static_cast<double>(recency_.size()));
  cv_.notify_all();
  return built;
}

std::size_t ArtifactResolver::resident_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recency_.size();
}

}  // namespace repro::serve
