// Per-hypergiant TLS certificate conventions, including the 2021 -> 2023
// changes that broke the original discovery methodology (Section 2.2):
//   * Google removed the Organization entry from the Subject Name; offnets
//     are identified by CN matching *.googlevideo.com in 2023.
//   * Meta switched to site-specific names (*.fhan14-4.fna.fbcdn.net style)
//     so exact onnet-name matching no longer works; the 2023 methodology
//     matches the *.fbcdn.net pattern.
//   * Netflix (*.oca.nflxvideo.net) and Akamai (Organization-based) kept
//     their conventions.
#pragma once

#include <string>
#include <string_view>

#include "hypergiant/profile.h"
#include "tls/certificate.h"
#include "util/rng.h"

namespace repro {

/// Issues the certificate an *offnet* server of `hg` serves at `snapshot`.
/// `metro_iata` feeds Meta's site-specific naming; `site_ordinal` and
/// `deployment_ordinal` distinguish multiple sites/racks in one metro.
TlsCertificate make_offnet_certificate(Hypergiant hg, Snapshot snapshot,
                                       std::string_view metro_iata,
                                       int site_ordinal, Rng& rng);

/// Issues the certificate an *onnet* server of `hg` (inside the
/// hypergiant's own AS) serves at `snapshot`.
TlsCertificate make_onnet_certificate(Hypergiant hg, Snapshot snapshot, Rng& rng);

/// Meta's site-specific offnet name for a metro/site, e.g.
/// "*.fhan14-4.fna.fbcdn.net" for Hanoi site 14-4.
std::string meta_site_name(std::string_view metro_iata, int site_ordinal,
                           int rack_ordinal);

}  // namespace repro
