// Builds the scan-visible TLS population for one snapshot: offnet servers
// (hypergiant certs inside ISP address space), onnet servers (hypergiant
// certs inside hypergiant ASes -- which the classifier must exclude), plus a
// background of unrelated ISP/enterprise certificates and deliberate
// lookalike decoys that a sloppy fingerprint would misclassify.
#pragma once

#include <cstdint>

#include "hypergiant/deployment.h"
#include "tls/cert_store.h"

namespace repro {

struct PopulationConfig {
  std::uint64_t seed = 4242;
  /// Background TLS endpoints per access ISP (web servers, mail, ...).
  int background_per_isp = 2;
  /// Onnet serving IPs per hypergiant.
  int onnet_servers_per_hg = 200;
  /// Lookalike decoys (certs with hypergiant-ish names that must NOT match).
  int decoy_count = 50;
};

/// Assembles the CertStore a Censys-style scan of this snapshot would see.
CertStore build_tls_population(const Internet& internet,
                               const OffnetRegistry& registry, Snapshot snapshot,
                               const PopulationConfig& config);

}  // namespace repro
