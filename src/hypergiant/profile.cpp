#include "hypergiant/profile.h"

#include "topology/generator.h"

namespace repro {

namespace {

constexpr std::array<Hypergiant, kHypergiantCount> kAll = {
    Hypergiant::kGoogle, Hypergiant::kNetflix, Hypergiant::kMeta,
    Hypergiant::kAkamai};

constexpr std::array<HypergiantProfile, kHypergiantCount> kProfiles = {{
    // id, asn, name, traffic_share, cache_eff, 2021, 2023, min_users,
    // extra_site, servers_scale
    {Hypergiant::kGoogle, kGoogleAsn, "Google", 0.21, 0.80, 3810, 4697, 1.5e4,
     0.45, 15.0},
    {Hypergiant::kNetflix, kNetflixAsn, "Netflix", 0.09, 0.95, 2115, 2906, 4e4,
     0.10, 8.0},
    {Hypergiant::kMeta, kMetaAsn, "Meta", 0.15, 0.86, 2214, 2588, 4e4, 0.22,
     10.0},
    {Hypergiant::kAkamai, kAkamaiAsn, "Akamai", 0.175, 0.75, 1094, 1094, 4e4,
     0.35, 19.0},
}};

}  // namespace

std::span<const Hypergiant> all_hypergiants() noexcept { return kAll; }

std::string_view to_string(Hypergiant hg) noexcept {
  return profile(hg).name;
}

std::string_view to_string(Snapshot snapshot) noexcept {
  return snapshot == Snapshot::k2021 ? "2021" : "2023";
}

int snapshot_year(Snapshot snapshot) noexcept {
  return snapshot == Snapshot::k2021 ? 2021 : 2023;
}

const HypergiantProfile& profile(Hypergiant hg) noexcept {
  return kProfiles[static_cast<std::size_t>(hg)];
}

double offnet_serveable_traffic_fraction(Hypergiant hg) noexcept {
  const auto& p = profile(hg);
  return p.traffic_share * p.cache_efficiency;
}

}  // namespace repro
