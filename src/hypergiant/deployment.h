// Ground-truth offnet deployment.
//
// The DeploymentPolicy decides which ISPs host which hypergiants' offnets at
// each snapshot (calibrated against the paper's Table 1 footprints), places
// servers into facilities and racks (the colocation behaviour Section 3
// measures), and numbers them out of the host ISP's address space (which is
// why a TLS scan sees hypergiant certificates inside ISP ASes).
//
// Everything downstream -- the scanner, the ping mesh, the clustering -- must
// *rediscover* this ground truth; tests compare inferences against it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hypergiant/profile.h"
#include "topology/internet.h"
#include "util/rng.h"

namespace repro {

/// One deployed offnet server (ground truth).
struct OffnetServer {
  Ipv4 ip;
  Hypergiant hg = Hypergiant::kGoogle;
  AsIndex isp = kInvalidIndex;
  FacilityIndex facility = kInvalidIndex;
  int site_ordinal = 0;  // which site of the deployment this server is in
  int rack = 0;          // rack id within the facility
};

/// One (ISP, hypergiant) deployment: its sites and its servers.
struct Deployment {
  Hypergiant hg = Hypergiant::kGoogle;
  AsIndex isp = kInvalidIndex;
  std::vector<FacilityIndex> sites;
  std::vector<std::size_t> server_indices;  // into OffnetRegistry::servers()
};

/// Ground-truth registry for one snapshot.
class OffnetRegistry {
 public:
  void add_deployment(Deployment deployment);
  std::size_t add_server(OffnetServer server);

  const std::vector<OffnetServer>& servers() const noexcept { return servers_; }
  const std::map<std::pair<AsIndex, Hypergiant>, Deployment>& deployments()
      const noexcept {
    return deployments_;
  }

  /// Deployment of `hg` at `isp`, if any.
  const Deployment* find_deployment(AsIndex isp, Hypergiant hg) const noexcept;

  /// Hypergiants hosted by an ISP (canonical order).
  std::vector<Hypergiant> hypergiants_at(AsIndex isp) const;

  /// ISPs hosting at least one offnet.
  std::vector<AsIndex> hosting_isps() const;

  /// ISPs hosting `hg`.
  std::vector<AsIndex> isps_hosting(Hypergiant hg) const;

  /// Servers deployed in `isp` (indices into servers()).
  std::vector<std::size_t> servers_at(AsIndex isp) const;

  /// Ground-truth facility -> hosted hypergiants, within one ISP.
  std::map<FacilityIndex, std::vector<Hypergiant>> facility_map(AsIndex isp) const;

  std::size_t server_count() const noexcept { return servers_.size(); }

 private:
  std::vector<OffnetServer> servers_;
  std::map<std::pair<AsIndex, Hypergiant>, Deployment> deployments_;
};

struct DeploymentConfig {
  std::uint64_t seed = 99;

  /// Scales the Table-1 footprint targets (set equal to the topology
  /// generator's `scale` so a small world gets a proportional footprint).
  double footprint_scale = 1.0;

  /// Probability that an ISP hosting several hypergiants puts them all in
  /// its preferred facility (drives Table 2's 100%-colocated bucket; the
  /// paper measures 81-95% of multi-HG ISPs colocating at least some).
  double colocate_all_probability = 0.80;

  /// Probability that an Akamai deployment predates current practice and
  /// sits in the ISP's own legacy POP instead (Akamai's buckets in Table 2
  /// are shifted towards partial colocation).
  double akamai_legacy_probability = 0.45;

  /// Global multiplier on servers per deployment (calibrates the ~261K
  /// offnet IP total).
  double server_count_multiplier = 1.12;

  /// Probability that a colocated deployment lands in the same rack as the
  /// ISP's other offnets ("super common", per the operator anecdote).
  double same_rack_probability = 0.85;
};

/// Plans deployments for a snapshot. Deterministic in (internet, config).
/// The 2023 footprint is a superset of 2021 for Google/Netflix/Meta and
/// identical for Akamai, matching Table 1.
class DeploymentPolicy {
 public:
  DeploymentPolicy(const Internet& internet, DeploymentConfig config);

  OffnetRegistry deploy(Snapshot snapshot) const;

  /// The ISPs that would host `hg` at `snapshot` (adoption order).
  std::vector<AsIndex> footprint(Hypergiant hg, Snapshot snapshot) const;

  /// The effective (scaled) Table-1 target for `hg` at `snapshot`.
  int target_isps(Hypergiant hg, Snapshot snapshot) const;

  // --- longitudinal extension (the 2021 foundation paper tracked offnet
  // footprints over seven years; the growth model anchors on the Table-1
  // snapshots and extrapolates a constant per-hypergiant annual rate) ---

  /// Footprint target for any year (Akamai is flat; the others grow at the
  /// rate implied by their 2021 -> 2023 change).
  int target_isps_for_year(Hypergiant hg, int year) const;

  /// Adoption-ordered hosts for a year; monotone in `year`.
  std::vector<AsIndex> footprint_for_year(Hypergiant hg, int year) const;

  /// Ground truth for any year.
  OffnetRegistry deploy_for_year(int year) const;

 private:
  const Internet& internet_;
  DeploymentConfig config_;
  std::vector<AsIndex> eligible_sorted(Hypergiant hg) const;
  OffnetRegistry deploy_from(
      const std::array<std::vector<AsIndex>, kHypergiantCount>& footprints) const;
};

}  // namespace repro
