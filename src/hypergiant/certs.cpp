#include "hypergiant/certs.h"

#include <string>

#include "util/error.h"

namespace repro {

namespace {

TlsCertificate base_cert(Rng& rng, int snapshot_year_value) {
  TlsCertificate cert;
  cert.not_before_year = snapshot_year_value - 1;
  cert.not_after_year = snapshot_year_value + 1;
  cert.serial = rng.next();
  return cert;
}

}  // namespace

std::string meta_site_name(std::string_view metro_iata, int site_ordinal,
                           int rack_ordinal) {
  return "*.f" + std::string(metro_iata) + std::to_string(site_ordinal) + "-" +
         std::to_string(rack_ordinal) + ".fna.fbcdn.net";
}

TlsCertificate make_offnet_certificate(Hypergiant hg, Snapshot snapshot,
                                       std::string_view metro_iata,
                                       int site_ordinal, Rng& rng) {
  TlsCertificate cert = base_cert(rng, snapshot_year(snapshot));
  switch (hg) {
    case Hypergiant::kGoogle:
      cert.subject.common_name = "*.googlevideo.com";
      cert.san_dns = {"*.googlevideo.com", "*.gvt1.com"};
      // 2021: Organization present ("Google LLC"); 2023: removed.
      cert.subject.organization =
          snapshot == Snapshot::k2021 ? "Google LLC" : "";
      cert.subject.country = "US";
      cert.issuer.common_name = "GTS CA 1C3";
      cert.issuer.organization = "Google Trust Services LLC";
      return cert;
    case Hypergiant::kNetflix:
      // Open Connect appliances; convention unchanged across snapshots.
      cert.subject.common_name = "*.oca.nflxvideo.net";
      cert.san_dns = {"*.oca.nflxvideo.net"};
      cert.subject.organization = "Netflix, Inc.";
      cert.subject.country = "US";
      cert.issuer.common_name = "DigiCert TLS RSA SHA256 2020 CA1";
      cert.issuer.organization = "DigiCert Inc";
      return cert;
    case Hypergiant::kMeta: {
      // 2021: offnets carried the same wildcard as onnet caches.
      // 2023: site-specific names (e.g. *.fhan14-4.fna.fbcdn.net).
      if (snapshot == Snapshot::k2021) {
        cert.subject.common_name = "*.fna.fbcdn.net";
        cert.san_dns = {"*.fna.fbcdn.net"};
      } else {
        const std::string name = meta_site_name(
            metro_iata, 10 + site_ordinal,
            1 + static_cast<int>(rng.uniform_int(1, 6)));
        cert.subject.common_name = name;
        cert.san_dns = {name};
      }
      cert.subject.organization =
          snapshot == Snapshot::k2021 ? "Facebook, Inc." : "Meta Platforms, Inc.";
      cert.subject.country = "US";
      cert.issuer.common_name = "DigiCert SHA2 High Assurance Server CA";
      cert.issuer.organization = "DigiCert Inc";
      return cert;
    }
    case Hypergiant::kAkamai:
      cert.subject.common_name = "a248.e.akamai.net";
      cert.san_dns = {"a248.e.akamai.net", "*.akamaized.net",
                      "*.akamaihd.net"};
      cert.subject.organization = "Akamai Technologies, Inc.";
      cert.subject.country = "US";
      cert.issuer.common_name = "GlobalSign RSA OV SSL CA 2018";
      cert.issuer.organization = "GlobalSign nv-sa";
      return cert;
  }
  throw Error("make_offnet_certificate: bad hypergiant");
}

TlsCertificate make_onnet_certificate(Hypergiant hg, Snapshot snapshot, Rng& rng) {
  TlsCertificate cert = base_cert(rng, snapshot_year(snapshot));
  switch (hg) {
    case Hypergiant::kGoogle:
      // Onnet video caches also present googlevideo names; the classifier
      // excludes them via IP-to-AS, not via the certificate.
      cert.subject.common_name = "*.googlevideo.com";
      cert.san_dns = {"*.google.com", "*.googlevideo.com", "*.youtube.com"};
      cert.subject.organization =
          snapshot == Snapshot::k2021 ? "Google LLC" : "";
      cert.subject.country = "US";
      cert.issuer.common_name = "GTS CA 1C3";
      cert.issuer.organization = "Google Trust Services LLC";
      return cert;
    case Hypergiant::kNetflix:
      cert.subject.common_name = "*.nflxvideo.net";
      cert.san_dns = {"*.nflxvideo.net", "*.netflix.com"};
      cert.subject.organization = "Netflix, Inc.";
      cert.subject.country = "US";
      cert.issuer.common_name = "DigiCert TLS RSA SHA256 2020 CA1";
      cert.issuer.organization = "DigiCert Inc";
      return cert;
    case Hypergiant::kMeta:
      // Onnet caches keep the non-site-specific wildcard.
      cert.subject.common_name = "*.fna.fbcdn.net";
      cert.san_dns = {"*.fna.fbcdn.net", "*.facebook.com", "*.fbcdn.net"};
      cert.subject.organization =
          snapshot == Snapshot::k2021 ? "Facebook, Inc." : "Meta Platforms, Inc.";
      cert.subject.country = "US";
      cert.issuer.common_name = "DigiCert SHA2 High Assurance Server CA";
      cert.issuer.organization = "DigiCert Inc";
      return cert;
    case Hypergiant::kAkamai:
      cert.subject.common_name = "a248.e.akamai.net";
      cert.san_dns = {"a248.e.akamai.net", "*.akamaiedge.net"};
      cert.subject.organization = "Akamai Technologies, Inc.";
      cert.subject.country = "US";
      cert.issuer.common_name = "GlobalSign RSA OV SSL CA 2018";
      cert.issuer.organization = "GlobalSign nv-sa";
      return cert;
  }
  throw Error("make_onnet_certificate: bad hypergiant");
}

}  // namespace repro
