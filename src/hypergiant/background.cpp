#include "hypergiant/background.h"

#include <string>

#include "hypergiant/certs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/strings.h"

namespace repro {

namespace {

TlsCertificate make_isp_certificate(const As& as, Snapshot snapshot, Rng& rng) {
  TlsCertificate cert;
  cert.subject.common_name = "www." + to_lower(as.name) + ".example.net";
  cert.subject.organization = as.name + " Communications";
  cert.subject.country = "";
  cert.issuer.common_name = "R3";
  cert.issuer.organization = "Let's Encrypt";
  cert.san_dns = {cert.subject.common_name};
  cert.not_before_year = snapshot_year(snapshot) - 1;
  cert.not_after_year = snapshot_year(snapshot);
  cert.serial = rng.next();
  return cert;
}

/// Decoys exercise classifier specificity: hypergiant-ish strings that must
/// not match the fingerprints (wrong suffix, wrong org, lookalike domains).
TlsCertificate make_decoy_certificate(int ordinal, Snapshot snapshot, Rng& rng) {
  TlsCertificate cert;
  switch (ordinal % 5) {
    case 0:
      cert.subject.common_name = "cache.googlevideo.com.cdn-mirror.example";
      cert.subject.organization = "Totally Not Google Ltd";
      break;
    case 1:
      cert.subject.common_name = "*.fbcdn.net.phish.example";
      cert.subject.organization = "";
      break;
    case 2:
      cert.subject.common_name = "video.oca-nflxvideo.example.net";
      cert.subject.organization = "Netflix Fan Club";
      break;
    case 3:
      cert.subject.common_name = "*.akamaized.example.org";
      cert.subject.organization = "Akamai Technologies";  // missing ", Inc."
      break;
    default:
      cert.subject.common_name = "*.othercdn.example";
      cert.subject.organization = "OtherCDN Inc";  // a 5th CDN we don't track
      break;
  }
  cert.san_dns = {cert.subject.common_name};
  cert.issuer.common_name = "R3";
  cert.issuer.organization = "Let's Encrypt";
  cert.not_before_year = snapshot_year(snapshot) - 1;
  cert.not_after_year = snapshot_year(snapshot) + 1;
  cert.serial = rng.next();
  return cert;
}

}  // namespace

CertStore build_tls_population(const Internet& internet,
                               const OffnetRegistry& registry, Snapshot snapshot,
                               const PopulationConfig& config) {
  obs::ScopedSpan span("tls.build_population");
  CertStore store;
  Rng rng(config.seed ^ mix64(static_cast<std::uint64_t>(snapshot)));

  // Offnet servers: hypergiant certificates in ISP address space.
  for (const OffnetServer& server : registry.servers()) {
    const Metro& metro =
        internet.metro_of_facility(server.facility);
    store.install(server.ip,
                  make_offnet_certificate(server.hg, snapshot, metro.iata,
                                          server.site_ordinal, rng));
  }

  // Onnet servers: hypergiant certificates inside the hypergiant's own AS.
  for (const Hypergiant hg : all_hypergiants()) {
    const AsIndex hg_as = internet.as_by_asn(profile(hg).asn);
    const Prefix& infra = internet.ases[hg_as].infra.pool();
    for (int i = 0; i < config.onnet_servers_per_hg; ++i) {
      const std::uint64_t offset = 1000 + static_cast<std::uint64_t>(i);
      require(offset < infra.size(), "build_tls_population: onnet block small");
      store.install(infra.at(offset), make_onnet_certificate(hg, snapshot, rng));
    }
  }

  // Background ISP endpoints in user space.
  for (const AsIndex isp : internet.access_isps()) {
    const As& as = internet.ases[isp];
    if (as.user_prefixes.empty()) continue;
    const Prefix& space = as.user_prefixes.front();
    for (int i = 0; i < config.background_per_isp; ++i) {
      const auto offset = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(space.size()) - 1));
      store.install(space.at(offset), make_isp_certificate(as, snapshot, rng));
    }
  }

  // Decoys scattered across random access ISPs' infra space (worst case for
  // the classifier: lookalike cert in a plausible network).
  const auto isps = internet.access_isps();
  for (int i = 0; i < config.decoy_count && !isps.empty(); ++i) {
    const AsIndex isp = isps[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(isps.size()) - 1))];
    const Prefix& infra = internet.ases[isp].infra.pool();
    // Decoys live in the top of the infra block, clear of offnet servers.
    const std::uint64_t offset = infra.size() - 1 - static_cast<std::uint64_t>(i % 64);
    store.install(infra.at(offset), make_decoy_certificate(i, snapshot, rng));
  }

  obs::metrics().counter("tls.population_endpoints").add(store.size());
  return store;
}

}  // namespace repro
