// The four hypergiants: identities, traffic model constants (Section 2.1 of
// the paper) and deployment-footprint targets (Table 1).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "topology/entities.h"

namespace repro {

enum class Hypergiant : std::uint8_t { kGoogle = 0, kNetflix, kMeta, kAkamai };

inline constexpr std::size_t kHypergiantCount = 4;

/// All hypergiants, in canonical order.
std::span<const Hypergiant> all_hypergiants() noexcept;

std::string_view to_string(Hypergiant hg) noexcept;

/// The two scan snapshots the paper compares (Table 1).
enum class Snapshot : std::uint8_t { k2021 = 0, k2023 };

std::string_view to_string(Snapshot snapshot) noexcept;
int snapshot_year(Snapshot snapshot) noexcept;

/// Static per-hypergiant constants. Traffic shares and cache efficiencies
/// are the paper's Section 2.1 / 3.2 estimates; footprint targets are the
/// Table 1 ISP counts, which the deployment policy treats as calibration
/// targets at scale 1.0.
struct HypergiantProfile {
  Hypergiant id;
  AsNumber asn;
  std::string_view name;

  /// Share of total Internet traffic (Sandvine/Akamai estimates).
  double traffic_share;
  /// Fraction of the hypergiant's traffic an offnet can serve.
  double cache_efficiency;

  /// Table 1 footprint (number of ISPs with offnets) per snapshot.
  int isps_2021;
  int isps_2023;

  /// Minimum ISP size (users) to qualify for an offnet.
  double min_isp_users;

  /// Probability that a multi-metro ISP gets an additional offnet site
  /// (drives the Section 4.1 single-site fractions; Google deploys
  /// multi-site most aggressively, Netflix least).
  double extra_site_propensity;

  /// Mean offnet servers per deployment at a reference ISP size; the
  /// deployment scales it with ISP users.
  double servers_scale;
};

/// Profile lookup (static data).
const HypergiantProfile& profile(Hypergiant hg) noexcept;

/// Fraction of a user's *total* Internet traffic a facility hosting this
/// hypergiant's offnet can serve: traffic_share * cache_efficiency.
/// (Google 21% x 80% = 17%, Netflix 9% x 95% = 9%, Meta 15% x 86% = 13%,
/// Akamai 17.5% x 75% = 13%; all four together 52%.)
double offnet_serveable_traffic_fraction(Hypergiant hg) noexcept;

}  // namespace repro
