#include "hypergiant/deployment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/error.h"

namespace repro {

namespace {

/// Stable per-(seed, isp, hg, salt) generator.
Rng keyed_rng(std::uint64_t seed, AsIndex isp, Hypergiant hg, std::uint64_t salt) {
  return Rng(mix64(seed ^ mix64(isp * 1000003ULL + static_cast<std::uint64_t>(hg) +
                                (salt << 48))));
}

/// Offnet server addresses come from the host ISP's infra block, above the
/// range reserved for router interfaces.
constexpr std::uint64_t kInfraRouterReserve = 256;

}  // namespace

void OffnetRegistry::add_deployment(Deployment deployment) {
  const auto key = std::make_pair(deployment.isp, deployment.hg);
  require(!deployments_.contains(key), "OffnetRegistry: duplicate deployment");
  deployments_.emplace(key, std::move(deployment));
}

std::size_t OffnetRegistry::add_server(OffnetServer server) {
  const auto key = std::make_pair(server.isp, server.hg);
  const auto it = deployments_.find(key);
  require(it != deployments_.end(),
          "OffnetRegistry: server for unknown deployment");
  servers_.push_back(server);
  it->second.server_indices.push_back(servers_.size() - 1);
  return servers_.size() - 1;
}

const Deployment* OffnetRegistry::find_deployment(AsIndex isp,
                                                  Hypergiant hg) const noexcept {
  const auto it = deployments_.find(std::make_pair(isp, hg));
  return it == deployments_.end() ? nullptr : &it->second;
}

std::vector<Hypergiant> OffnetRegistry::hypergiants_at(AsIndex isp) const {
  std::vector<Hypergiant> out;
  for (const Hypergiant hg : all_hypergiants()) {
    if (find_deployment(isp, hg) != nullptr) out.push_back(hg);
  }
  return out;
}

std::vector<AsIndex> OffnetRegistry::hosting_isps() const {
  std::vector<AsIndex> out;
  for (const auto& [key, deployment] : deployments_) {
    (void)deployment;
    if (out.empty() || out.back() != key.first) out.push_back(key.first);
  }
  // deployments_ is ordered by (isp, hg), so `out` is sorted and unique.
  return out;
}

std::vector<AsIndex> OffnetRegistry::isps_hosting(Hypergiant hg) const {
  std::vector<AsIndex> out;
  for (const auto& [key, deployment] : deployments_) {
    (void)deployment;
    if (key.second == hg) out.push_back(key.first);
  }
  return out;
}

std::vector<std::size_t> OffnetRegistry::servers_at(AsIndex isp) const {
  std::vector<std::size_t> out;
  for (const Hypergiant hg : all_hypergiants()) {
    if (const Deployment* d = find_deployment(isp, hg)) {
      out.insert(out.end(), d->server_indices.begin(), d->server_indices.end());
    }
  }
  return out;
}

std::map<FacilityIndex, std::vector<Hypergiant>> OffnetRegistry::facility_map(
    AsIndex isp) const {
  std::map<FacilityIndex, std::vector<Hypergiant>> out;
  for (const std::size_t si : servers_at(isp)) {
    const OffnetServer& server = servers_[si];
    auto& hosted = out[server.facility];
    if (std::find(hosted.begin(), hosted.end(), server.hg) == hosted.end()) {
      hosted.push_back(server.hg);
    }
  }
  return out;
}

DeploymentPolicy::DeploymentPolicy(const Internet& internet, DeploymentConfig config)
    : internet_(internet), config_(std::move(config)) {
  require(config_.footprint_scale > 0.0,
          "DeploymentConfig: footprint_scale must be positive");
}

std::vector<AsIndex> DeploymentPolicy::eligible_sorted(Hypergiant hg) const {
  const auto& prof = profile(hg);
  struct Scored {
    AsIndex isp;
    double score;
  };
  std::vector<Scored> scored;
  for (const AsIndex isp : internet_.access_isps()) {
    const double users = internet_.ases[isp].users;
    if (users < prof.min_isp_users * config_.footprint_scale) continue;
    // Adoption score: bigger ISPs adopt earlier, with idiosyncratic noise.
    // Akamai's footprint is decades old and much more idiosyncratic (many
    // legacy relationships with mid-size ISPs), hence the wider noise -- it
    // is what produces ISPs hosting *only* Akamai (16% in the paper).
    Rng rng = keyed_rng(config_.seed, isp, hg, /*salt=*/1);
    const double sigma = hg == Hypergiant::kAkamai ? 2.2 : 0.8;
    const double score = std::pow(users, 0.85) * rng.lognormal(0.0, sigma);
    scored.push_back({isp, score});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.isp < b.isp;
  });
  std::vector<AsIndex> out;
  out.reserve(scored.size());
  for (const auto& s : scored) out.push_back(s.isp);
  return out;
}

int DeploymentPolicy::target_isps(Hypergiant hg, Snapshot snapshot) const {
  const auto& prof = profile(hg);
  const int paper_target =
      snapshot == Snapshot::k2021 ? prof.isps_2021 : prof.isps_2023;
  return std::max(1, static_cast<int>(std::lround(
                         paper_target * config_.footprint_scale)));
}

int DeploymentPolicy::target_isps_for_year(Hypergiant hg, int year) const {
  const auto& prof = profile(hg);
  // Annual growth implied by the two Table-1 anchors; Akamai is flat.
  const double ratio =
      static_cast<double>(prof.isps_2023) / static_cast<double>(prof.isps_2021);
  const double annual = std::sqrt(ratio);
  const double target =
      prof.isps_2021 * std::pow(annual, static_cast<double>(year - 2021));
  return std::max(1, static_cast<int>(std::lround(
                         target * config_.footprint_scale)));
}

std::vector<AsIndex> DeploymentPolicy::footprint(Hypergiant hg,
                                                 Snapshot snapshot) const {
  auto ranked = eligible_sorted(hg);
  const auto target = static_cast<std::size_t>(target_isps(hg, snapshot));
  if (ranked.size() > target) ranked.resize(target);
  return ranked;
}

std::vector<AsIndex> DeploymentPolicy::footprint_for_year(Hypergiant hg,
                                                          int year) const {
  auto ranked = eligible_sorted(hg);
  const auto target = static_cast<std::size_t>(target_isps_for_year(hg, year));
  if (ranked.size() > target) ranked.resize(target);
  return ranked;
}

OffnetRegistry DeploymentPolicy::deploy_for_year(int year) const {
  std::array<std::vector<AsIndex>, kHypergiantCount> footprints;
  for (const Hypergiant hg : all_hypergiants()) {
    footprints[static_cast<std::size_t>(hg)] = footprint_for_year(hg, year);
  }
  return deploy_from(footprints);
}

OffnetRegistry DeploymentPolicy::deploy(Snapshot snapshot) const {
  std::array<std::vector<AsIndex>, kHypergiantCount> footprints;
  for (const Hypergiant hg : all_hypergiants()) {
    footprints[static_cast<std::size_t>(hg)] = footprint(hg, snapshot);
  }
  return deploy_from(footprints);
}

OffnetRegistry DeploymentPolicy::deploy_from(
    const std::array<std::vector<AsIndex>, kHypergiantCount>& footprints) const {
  OffnetRegistry registry;
  // Per-ISP cursor into the infra block, shared by all hypergiants hosted
  // there so server addresses never collide.
  std::unordered_map<AsIndex, std::uint64_t> cursor;

  for (const Hypergiant hg : all_hypergiants()) {
    const auto& prof = profile(hg);
    for (const AsIndex isp : footprints[static_cast<std::size_t>(hg)]) {
      const As& as = internet_.ases[isp];
      Rng rng = keyed_rng(config_.seed, isp, hg, /*salt=*/2);
      // ISP-level style is keyed only by the ISP so all its deployments
      // agree on whether they colocate.
      Rng isp_rng = keyed_rng(config_.seed, isp, Hypergiant::kGoogle, /*salt=*/3);
      const bool colocate_all = isp_rng.chance(config_.colocate_all_probability);
      const int preferred_rack = static_cast<int>(isp_rng.uniform_int(0, 39));

      Deployment deployment;
      deployment.hg = hg;
      deployment.isp = isp;

      // --- choose sites ---
      const auto primary_options =
          internet_.hosting_options(isp, as.primary_metro);
      require(!primary_options.empty(), "deploy: ISP has no hosting options");
      FacilityIndex primary_site;
      const bool akamai_legacy =
          hg == Hypergiant::kAkamai && rng.chance(config_.akamai_legacy_probability);
      if (akamai_legacy && !as.facilities.empty()) {
        primary_site = as.facilities.front();  // the ISP's own legacy POP
      } else if (colocate_all) {
        primary_site = primary_options.front();  // the metro's main colo
      } else {
        primary_site = primary_options[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(primary_options.size()) - 1))];
      }
      deployment.sites.push_back(primary_site);

      // Additional sites. Two flavors, both governed by the hypergiant's
      // multi-site propensity: a second facility in the same metro (common
      // for Google-style multi-node deployments) and sites in the ISP's
      // other metros of presence.
      if (primary_options.size() > 1 &&
          rng.chance(prof.extra_site_propensity * 0.6)) {
        for (const FacilityIndex option : primary_options) {
          if (option != primary_site) {
            deployment.sites.push_back(option);
            break;
          }
        }
      }
      if (as.metros.size() > 1 && rng.chance(prof.extra_site_propensity)) {
        for (std::size_t m = 1; m < as.metros.size() && deployment.sites.size() < 4;
             ++m) {
          if (m > 1 && !rng.chance(0.4)) break;
          const auto options = internet_.hosting_options(isp, as.metros[m]);
          if (options.empty()) continue;
          deployment.sites.push_back(options.front());
        }
      }

      registry.add_deployment(deployment);

      // --- place servers ---
      const double size_factor = std::pow(as.users / 5e5, 0.7);
      for (std::size_t site = 0; site < deployment.sites.size(); ++site) {
        const double site_share = site == 0 ? 1.0 : 0.5;
        const int servers = std::clamp(
            static_cast<int>(std::lround(prof.servers_scale * size_factor *
                                         site_share *
                                         config_.server_count_multiplier *
                                         rng.lognormal(0.0, 0.35))),
            2, 400);
        const bool same_rack = rng.chance(config_.same_rack_probability);
        const int rack_base =
            same_rack ? preferred_rack : static_cast<int>(rng.uniform_int(0, 39));
        // Some deployments straddle two racks even when small (a second
        // shelf / power zone); this is what populates the paper's partial-
        // colocation buckets at the conservative xi.
        const bool rack_split = servers >= 4 && rng.chance(0.3);
        for (int i = 0; i < servers; ++i) {
          OffnetServer server;
          auto& offset = cursor[isp];
          const std::uint64_t address_index = kInfraRouterReserve + offset++;
          require(address_index < as.infra.pool().size(),
                  "deploy: ISP infra block exhausted");
          server.ip = as.infra.pool().at(address_index);
          server.hg = hg;
          server.isp = isp;
          server.facility = deployment.sites[site];
          server.site_ordinal = static_cast<int>(site);
          server.rack = rack_base + (i / 40) + (rack_split ? i % 2 : 0);
          registry.add_server(server);
        }
      }
    }
  }
  return registry;
}

}  // namespace repro
