#include "ip/ipv4.h"

#include <charconv>
#include <cstdio>

#include "util/error.h"
#include "util/strings.h"

namespace repro {

namespace {

std::uint32_t parse_octet(std::string_view text) {
  if (text.empty() || text.size() > 3) throw ParseError("bad IPv4 octet: '" + std::string(text) + "'");
  unsigned value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value > 255) {
    throw ParseError("bad IPv4 octet: '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace

Ipv4 Ipv4::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) throw ParseError("bad IPv4 address: '" + std::string(text) + "'");
  std::uint32_t value = 0;
  for (const auto& part : parts) value = (value << 8) | parse_octet(part);
  return Ipv4(value);
}

std::string Ipv4::to_string() const {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buffer;
}

Prefix::Prefix(Ipv4 network, int length) : length_(length) {
  require(length >= 0 && length <= 32, "Prefix: length outside [0, 32]");
  network_ = Ipv4(network.value() & mask());
}

Prefix Prefix::parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) throw ParseError("prefix missing '/': '" + std::string(text) + "'");
  const Ipv4 network = Ipv4::parse(text.substr(0, slash));
  const std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || length < 0 ||
      length > 32) {
    throw ParseError("bad prefix length: '" + std::string(len_text) + "'");
  }
  return Prefix(network, length);
}

Ipv4 Prefix::at(std::uint64_t i) const {
  require(i < size(), "Prefix::at: index outside prefix");
  return Ipv4(network_.value() + static_cast<std::uint32_t>(i));
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

Prefix enclosing_slash24(Ipv4 address) noexcept {
  return Prefix(Ipv4(address.value() & 0xffffff00u), 24);
}

}  // namespace repro
