// Longest-prefix-match trie mapping IPv4 prefixes to values. Used for
// IP-to-AS mapping (the scan classifier and the traceroute analyzer both
// need to attribute addresses to networks, as the paper does with BGP data).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ip/ipv4.h"
#include "util/error.h"

namespace repro {

/// Binary trie keyed by IPv4 prefixes. V must be copyable.
template <typename V>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or overwrites the value at `prefix`.
  void insert(const Prefix& prefix, V value) {
    Node* node = root_.get();
    for (int bit = 0; bit < prefix.length(); ++bit) {
      const int side = bit_at(prefix.network(), bit);
      if (!node->children[side]) node->children[side] = std::make_unique<Node>();
      node = node->children[side].get();
    }
    if (!node->value.has_value()) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix-match lookup; nullopt when no covering prefix exists.
  std::optional<V> lookup(Ipv4 address) const {
    const Node* node = root_.get();
    std::optional<V> best = node->value;
    for (int bit = 0; bit < 32 && node; ++bit) {
      node = node->children[bit_at(address, bit)].get();
      if (node && node->value.has_value()) best = node->value;
    }
    return best;
  }

  /// Exact-match lookup of a stored prefix.
  std::optional<V> exact(const Prefix& prefix) const {
    const Node* node = root_.get();
    for (int bit = 0; bit < prefix.length() && node; ++bit) {
      node = node->children[bit_at(prefix.network(), bit)].get();
    }
    if (!node) return std::nullopt;
    return node->value;
  }

  /// Number of stored prefixes.
  std::size_t size() const noexcept { return size_; }

  bool empty() const noexcept { return size_ == 0; }

  /// All (prefix, value) pairs in lexicographic (network, length) order.
  std::vector<std::pair<Prefix, V>> entries() const {
    std::vector<std::pair<Prefix, V>> out;
    out.reserve(size_);
    collect(root_.get(), 0, 0, out);
    return out;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> children[2];
  };

  static int bit_at(Ipv4 address, int bit) noexcept {
    return (address.value() >> (31 - bit)) & 1u;
  }

  void collect(const Node* node, std::uint32_t accum, int depth,
               std::vector<std::pair<Prefix, V>>& out) const {
    if (!node) return;
    if (node->value.has_value()) {
      out.emplace_back(Prefix(Ipv4(accum), depth), *node->value);
    }
    if (depth == 32) return;
    const std::uint32_t bit = 1u << (31 - depth);
    collect(node->children[0].get(), accum, depth + 1, out);
    collect(node->children[1].get(), accum | bit, depth + 1, out);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace repro
