// PrefixTrie is header-only (template); this translation unit exists to give
// the target a compiled artifact and to instantiate a common specialization
// as a compile check.
#include "ip/prefix_trie.h"

namespace repro {

template class PrefixTrie<std::uint32_t>;

}  // namespace repro
