// Sequential prefix allocator: carves disjoint sub-prefixes out of a pool.
// The topology generator uses one to hand each AS its address space, and
// each AS uses one to number routers, offnet servers, and user prefixes.
#pragma once

#include <cstdint>
#include <vector>

#include "ip/ipv4.h"

namespace repro {

/// Allocates non-overlapping prefixes and single addresses from a pool
/// prefix, in address order. Throws Error when the pool is exhausted.
class PrefixAllocator {
 public:
  explicit PrefixAllocator(Prefix pool);

  /// Allocates the next aligned prefix of the given length.
  /// Requires length >= pool.length().
  Prefix allocate_prefix(int length);

  /// Allocates a single address (equivalent to allocate_prefix(32)).
  Ipv4 allocate_address();

  /// Addresses remaining in the pool.
  std::uint64_t remaining() const noexcept;

  const Prefix& pool() const noexcept { return pool_; }

  /// Offset of the first unallocated address; with pool(), the allocator's
  /// complete state (for serialization).
  std::uint64_t next_offset() const noexcept { return next_offset_; }

  /// Restores a serialized position. Throws Error when the offset lies
  /// outside the pool.
  void restore_next_offset(std::uint64_t offset);

 private:
  Prefix pool_;
  std::uint64_t next_offset_ = 0;  // offset of the first unallocated address
};

}  // namespace repro
