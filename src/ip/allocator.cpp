#include "ip/allocator.h"

#include "util/error.h"

namespace repro {

PrefixAllocator::PrefixAllocator(Prefix pool) : pool_(pool) {}

Prefix PrefixAllocator::allocate_prefix(int length) {
  require(length >= pool_.length() && length <= 32,
          "PrefixAllocator: bad requested length");
  const std::uint64_t block = std::uint64_t{1} << (32 - length);
  // Align the next offset up to a multiple of the block size.
  const std::uint64_t aligned = (next_offset_ + block - 1) / block * block;
  require(aligned + block <= pool_.size(), "PrefixAllocator: pool exhausted");
  next_offset_ = aligned + block;
  return Prefix(pool_.at(aligned), length);
}

Ipv4 PrefixAllocator::allocate_address() {
  return allocate_prefix(32).network();
}

std::uint64_t PrefixAllocator::remaining() const noexcept {
  return pool_.size() - next_offset_;
}

void PrefixAllocator::restore_next_offset(std::uint64_t offset) {
  require(offset <= pool_.size(), "PrefixAllocator: offset outside pool");
  next_offset_ = offset;
}

}  // namespace repro
