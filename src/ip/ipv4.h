// IPv4 addresses and CIDR prefixes: strong value types with parsing,
// formatting, and containment arithmetic.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace repro {

/// An IPv4 address as a host-order 32-bit value.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_(value) {}

  /// Parses dotted-quad notation ("192.0.2.1"). Throws ParseError.
  static Ipv4 parse(std::string_view text);

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// Dotted-quad rendering.
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 CIDR prefix (network address + length). The network address is
/// always normalized (host bits zeroed).
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a prefix, zeroing host bits. Throws Error if length > 32.
  Prefix(Ipv4 network, int length);

  /// Parses "a.b.c.d/len". Throws ParseError.
  static Prefix parse(std::string_view text);

  constexpr Ipv4 network() const noexcept { return network_; }
  constexpr int length() const noexcept { return length_; }

  /// Netmask as a host-order 32-bit value (length 0 -> 0).
  constexpr std::uint32_t mask() const noexcept {
    return length_ == 0 ? 0u : ~0u << (32 - length_);
  }

  /// Number of addresses covered (2^(32-length)); 2^32 reported as 0 is
  /// avoided by returning a 64-bit count.
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// First address of the prefix.
  constexpr Ipv4 first() const noexcept { return network_; }

  /// Last address of the prefix.
  constexpr Ipv4 last() const noexcept {
    return Ipv4(network_.value() | ~mask());
  }

  /// i-th address inside the prefix. Throws Error when i >= size().
  Ipv4 at(std::uint64_t i) const;

  constexpr bool contains(Ipv4 address) const noexcept {
    return (address.value() & mask()) == network_.value();
  }

  constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// "a.b.c.d/len" rendering.
  std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const = default;

 private:
  Ipv4 network_{};
  int length_ = 0;
};

/// The enclosing /24 of an address (the paper traceroutes one IP per
/// announced /24).
Prefix enclosing_slash24(Ipv4 address) noexcept;

}  // namespace repro

template <>
struct std::hash<repro::Ipv4> {
  std::size_t operator()(const repro::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};

template <>
struct std::hash<repro::Prefix> {
  std::size_t operator()(const repro::Prefix& prefix) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{prefix.network().value()} << 8) |
        static_cast<std::uint64_t>(prefix.length()));
  }
};
