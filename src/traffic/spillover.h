// The spillover waterfall (Section 4): when demand exceeds (or a failure
// removes) local offnet capacity, the overflow is served across interdomain
// boundaries -- dedicated PNIs first, then shared routes (IXP fabrics,
// transit providers), where it competes with everything else. Congestion on
// a shared resource degrades *all* traffic on it proportionally: that is the
// collateral damage of Section 4.3.
#pragma once

#include <array>
#include <set>

#include "traffic/capacity.h"

namespace repro {

/// How shared links (IXP ports, transit) arbitrate overload -- the
/// Section 6 mitigation discussion.
enum class SharedLinkPolicy : std::uint8_t {
  /// Today's Internet: everything on the link degrades proportionally,
  /// so hypergiant spillover damages unrelated traffic.
  kBestEffort = 0,
  /// Isolation mechanisms "to protect capacity for each hypergiant and for
  /// other Internet traffic": non-hypergiant traffic is reserved its
  /// baseline share first; hypergiant spillover only competes for the
  /// remainder (and degrades itself when that runs out).
  kIsolation,
};

std::string_view to_string(SharedLinkPolicy policy) noexcept;

/// What-if inputs for one ISP simulation.
struct SpilloverScenario {
  /// UTC hour of the evaluation (use local_peak_utc_hour() for the ISP's
  /// evening peak).
  double utc_hour = 20.0;
  /// Per-hypergiant demand multipliers (flash crowd, lockdown surge, ...).
  std::array<double, kHypergiantCount> demand_multiplier{1.0, 1.0, 1.0, 1.0};
  /// Facilities that are down (offnet sites there serve nothing).
  std::set<FacilityIndex> failed_facilities;
  /// Shared-link arbitration (Section 6 what-if).
  SharedLinkPolicy policy = SharedLinkPolicy::kBestEffort;
};

/// Where one hypergiant's traffic to the ISP ended up (Gbps).
struct HgFlow {
  double demand = 0.0;
  double offnet = 0.0;    // served locally
  double pni = 0.0;       // dedicated interconnect
  double ixp = 0.0;       // shared IXP fabric (pre-congestion desired load)
  double transit = 0.0;   // provider path (pre-congestion desired load)
  double degraded = 0.0;  // lost/degraded due to shared-link congestion

  double interdomain() const noexcept { return pni + ixp + transit; }
};

/// Outcome of one ISP x scenario simulation.
struct SpilloverResult {
  std::array<HgFlow, kHypergiantCount> flows;

  double other_demand = 0.0;         // non-hypergiant traffic
  double ixp_load = 0.0;             // total desired load on IXP ports
  double ixp_capacity = 0.0;
  double transit_load = 0.0;         // total desired load on provider links
  double transit_capacity = 0.0;
  double other_ixp_load = 0.0;       // the non-hypergiant share of ixp_load
  double other_transit_load = 0.0;   // ... and of transit_load

  SharedLinkPolicy policy = SharedLinkPolicy::kBestEffort;

  /// Fraction of desired load that a shared resource cannot carry.
  double ixp_drop_fraction() const noexcept;
  double transit_drop_fraction() const noexcept;

  /// Collateral damage: fraction of *other* (non-hypergiant) traffic
  /// degraded by congestion on the shared resources it uses. Zero under
  /// kIsolation (that is the point of the mechanism).
  double other_traffic_degraded_fraction() const noexcept;

  const HgFlow& flow(Hypergiant hg) const noexcept {
    return flows[static_cast<std::size_t>(hg)];
  }
};

/// Fluid-model spillover simulator.
class SpilloverSimulator {
 public:
  SpilloverSimulator(const Internet& internet, const OffnetRegistry& registry,
                     const DemandModel& demand, const CapacityModel& capacity);

  SpilloverResult simulate(AsIndex isp, const SpilloverScenario& scenario) const;

  /// UTC hour at which this ISP hits its local 21:00 evening peak.
  double local_peak_utc_hour(AsIndex isp) const;

  /// Share of the ISP's non-hypergiant traffic that rides its IXP ports
  /// (the rest uses transit).
  static constexpr double kOtherTrafficIxpShare = 0.15;

 private:
  const Internet& internet_;
  const OffnetRegistry& registry_;
  const DemandModel& demand_;
  const CapacityModel& capacity_;
};

}  // namespace repro
