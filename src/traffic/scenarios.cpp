#include "traffic/scenarios.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace repro {

// ---------------------------------------------------------------- Covid ---

double CovidSurgeResult::offnet_increase_fraction() const noexcept {
  return offnet_before > 0.0 ? offnet_after / offnet_before - 1.0 : 0.0;
}

double CovidSurgeResult::interdomain_multiplier() const noexcept {
  return interdomain_before > 0.0 ? interdomain_after / interdomain_before : 0.0;
}

CovidSurgeResult covid_surge(const CovidSurgeInput& input) {
  require(input.offnet_share_before > 0.0 && input.offnet_share_before <= 1.0,
          "covid_surge: bad offnet share");
  require(input.surge_multiplier >= 1.0, "covid_surge: surge must be >= 1");
  CovidSurgeResult result;
  // Normalize pre-surge demand to 1.
  result.offnet_before = input.offnet_share_before;
  result.interdomain_before = 1.0 - input.offnet_share_before;

  const double capacity = input.offnet_share_before * input.offnet_headroom;
  // What the offnets *would* serve after the surge if capacity allowed: the
  // pre-surge serving share scales with demand (the hit pattern is a
  // property of the catalog), bounded by the cache efficiency.
  const double cacheable =
      input.surge_multiplier *
      std::min(input.offnet_share_before, input.cache_efficiency);
  result.offnet_after = std::min(cacheable, capacity);
  result.interdomain_after = input.surge_multiplier - result.offnet_after;
  return result;
}

// -------------------------------------------------------------- Diurnal ---

std::vector<DiurnalPoint> diurnal_study(const DiurnalStudyConfig& config) {
  require(config.apartments > 0, "diurnal_study: need apartments");
  require(config.hours > 0, "diurnal_study: need hours");
  Rng rng(config.seed);

  // Per-apartment peak demand with household variation.
  std::vector<double> apartment_peak(static_cast<std::size_t>(config.apartments));
  for (auto& peak : apartment_peak) {
    peak = config.per_apartment_peak_mbps * rng.lognormal(0.0, 0.5);
  }
  double population_peak_mbps = 0.0;
  for (const double peak : apartment_peak) population_peak_mbps += peak;

  // The in-ISP offnets covering this population saturate below the
  // population's hypergiant peak (headroom < 1 by default).
  const double hg_share = total_hypergiant_share();
  const double offnet_capacity_mbps =
      population_peak_mbps * hg_share * config.offnet_headroom;

  std::vector<DiurnalPoint> out;
  out.reserve(static_cast<std::size_t>(config.hours));
  for (int hour = 0; hour < config.hours; ++hour) {
    DiurnalPoint point;
    point.local_hour = hour;
    const double multiplier = diurnal_multiplier(hour);
    const double total_mbps = population_peak_mbps * multiplier;
    point.total_demand = total_mbps / 1000.0;  // Gbps

    const double hg_demand = total_mbps * hg_share;
    const double near = std::min(hg_demand, offnet_capacity_mbps);
    const double far = total_mbps - near;  // spillover + non-HG traffic
    point.near_fraction = total_mbps > 0.0 ? near / total_mbps : 0.0;
    point.far_fraction = total_mbps > 0.0 ? far / total_mbps : 0.0;
    out.push_back(point);
  }
  return out;
}

// ------------------------------------------------------ PNI utilization ---

PniUtilizationStats pni_utilization(const Internet& internet,
                                    const OffnetRegistry& registry,
                                    const DemandModel& demand,
                                    const CapacityModel& capacity,
                                    Hypergiant hg) {
  PniUtilizationStats stats;
  stats.hg = hg;
  double exceedance_sum = 0.0;
  std::size_t exceeded = 0;
  std::size_t twice = 0;

  for (const AsIndex isp : internet.access_isps()) {
    const InterdomainCapacity inter = capacity.interdomain_capacity(isp, hg);
    if (inter.pni_gbps <= 0.0) continue;
    ++stats.isps_with_pni;

    // Interdomain demand at local peak: what the offnet cannot absorb.
    const double peak = demand.hypergiant_peak_demand_gbps(isp, hg);
    const double offnet = std::min(peak * profile(hg).cache_efficiency,
                                   capacity.offnet_capacity_gbps(isp, hg));
    const double interdomain = peak - offnet;
    if (interdomain > inter.pni_gbps) {
      ++exceeded;
      exceedance_sum += (interdomain - inter.pni_gbps) / inter.pni_gbps;
      if (interdomain >= 2.0 * inter.pni_gbps) ++twice;
    }
  }
  if (exceeded > 0) {
    stats.mean_peak_exceedance = exceedance_sum / static_cast<double>(exceeded);
  }
  if (stats.isps_with_pni > 0) {
    stats.fraction_exceeded = static_cast<double>(exceeded) /
                              static_cast<double>(stats.isps_with_pni);
    stats.fraction_demand_2x =
        static_cast<double>(twice) / static_cast<double>(stats.isps_with_pni);
  }
  return stats;
}

// -------------------------------------------------------------- Cascade ---

double CascadeOutcome::collateral_degradation() const noexcept {
  return failure.other_traffic_degraded_fraction() -
         baseline.other_traffic_degraded_fraction();
}

CascadeOutcome cascade_study(const Internet& internet,
                             const OffnetRegistry& registry,
                             const DemandModel& demand,
                             const CapacityModel& capacity, AsIndex isp) {
  CascadeOutcome outcome;
  outcome.isp = isp;

  // The facility hosting the most hypergiants (ties: lowest index).
  const auto facility_map = registry.facility_map(isp);
  for (const auto& [facility, hosted] : facility_map) {
    if (static_cast<int>(hosted.size()) > outcome.hypergiants_in_facility) {
      outcome.hypergiants_in_facility = static_cast<int>(hosted.size());
      outcome.failed_facility = facility;
    }
  }

  const SpilloverSimulator simulator(internet, registry, demand, capacity);
  SpilloverScenario scenario;
  scenario.utc_hour = simulator.local_peak_utc_hour(isp);
  outcome.baseline = simulator.simulate(isp, scenario);
  if (outcome.failed_facility != kInvalidIndex) {
    scenario.failed_facilities.insert(outcome.failed_facility);
  }
  outcome.failure = simulator.simulate(isp, scenario);
  return outcome;
}

}  // namespace repro
