// Time-stepped cascade simulation (Section 3.3 / 4.3's "perfect storm"):
// play events -- flash crowds, facility failures, and their overlap --
// against an ISP hour by hour and watch the spillover, shared-link
// congestion and collateral damage evolve.
#pragma once

#include <span>
#include <vector>

#include "traffic/spillover.h"

namespace repro {

/// One event active during [start_hour, end_hour) of the timeline.
struct TimelineEvent {
  double start_hour = 0.0;
  double end_hour = 0.0;
  /// Extra demand multipliers applied while active (flash crowd, bad
  /// software update retry storm, DoS-driven load).
  std::array<double, kHypergiantCount> extra_multiplier{1.0, 1.0, 1.0, 1.0};
  /// Facilities down while active.
  std::set<FacilityIndex> failed_facilities;
};

/// Flash crowd on one hypergiant.
TimelineEvent flash_crowd(Hypergiant hg, double start_hour, double duration,
                          double magnitude);

/// Facility outage.
TimelineEvent facility_failure(FacilityIndex facility, double start_hour,
                               double duration);

struct TimelinePoint {
  double hour = 0.0;      // hours since timeline start
  double utc_hour = 0.0;  // wall-clock UTC hour (mod 24)
  SpilloverResult state;
};

/// Hour-by-hour simulation of an ISP under a set of events.
class TimelineSimulator {
 public:
  explicit TimelineSimulator(const SpilloverSimulator& spillover);

  /// Runs `hours` steps of `step_hours` starting at `start_utc_hour`,
  /// composing all active events at each step.
  std::vector<TimelinePoint> run(
      AsIndex isp, std::span<const TimelineEvent> events, double hours = 48.0,
      double step_hours = 1.0, double start_utc_hour = 0.0,
      SharedLinkPolicy policy = SharedLinkPolicy::kBestEffort) const;

 private:
  const SpilloverSimulator& spillover_;
};

/// Peak collateral damage over a timeline (max over points of the
/// other-traffic degradation).
double peak_collateral(const std::vector<TimelinePoint>& timeline) noexcept;

/// Total degraded hypergiant traffic over a timeline (Gbps-hours).
double total_degraded_gbps_hours(const std::vector<TimelinePoint>& timeline,
                                 double step_hours = 1.0) noexcept;

}  // namespace repro
