#include "traffic/timeline.h"

#include <cmath>

#include "util/error.h"

namespace repro {

TimelineEvent flash_crowd(Hypergiant hg, double start_hour, double duration,
                          double magnitude) {
  require(magnitude >= 1.0, "flash_crowd: magnitude must be >= 1");
  TimelineEvent event;
  event.start_hour = start_hour;
  event.end_hour = start_hour + duration;
  event.extra_multiplier[static_cast<std::size_t>(hg)] = magnitude;
  return event;
}

TimelineEvent facility_failure(FacilityIndex facility, double start_hour,
                               double duration) {
  TimelineEvent event;
  event.start_hour = start_hour;
  event.end_hour = start_hour + duration;
  event.failed_facilities.insert(facility);
  return event;
}

TimelineSimulator::TimelineSimulator(const SpilloverSimulator& spillover)
    : spillover_(spillover) {}

std::vector<TimelinePoint> TimelineSimulator::run(
    AsIndex isp, std::span<const TimelineEvent> events, double hours,
    double step_hours, double start_utc_hour, SharedLinkPolicy policy) const {
  require(hours > 0.0 && step_hours > 0.0, "TimelineSimulator: bad horizon");
  std::vector<TimelinePoint> timeline;
  timeline.reserve(static_cast<std::size_t>(hours / step_hours) + 1);

  for (double hour = 0.0; hour < hours; hour += step_hours) {
    SpilloverScenario scenario;
    scenario.utc_hour = std::fmod(start_utc_hour + hour, 24.0);
    scenario.policy = policy;
    for (const TimelineEvent& event : events) {
      if (hour < event.start_hour || hour >= event.end_hour) continue;
      for (std::size_t h = 0; h < kHypergiantCount; ++h) {
        scenario.demand_multiplier[h] *= event.extra_multiplier[h];
      }
      scenario.failed_facilities.insert(event.failed_facilities.begin(),
                                        event.failed_facilities.end());
    }
    TimelinePoint point;
    point.hour = hour;
    point.utc_hour = scenario.utc_hour;
    point.state = spillover_.simulate(isp, scenario);
    timeline.push_back(std::move(point));
  }
  return timeline;
}

double peak_collateral(const std::vector<TimelinePoint>& timeline) noexcept {
  double peak = 0.0;
  for (const TimelinePoint& point : timeline) {
    peak = std::max(peak, point.state.other_traffic_degraded_fraction());
  }
  return peak;
}

double total_degraded_gbps_hours(const std::vector<TimelinePoint>& timeline,
                                 double step_hours) noexcept {
  double total = 0.0;
  for (const TimelinePoint& point : timeline) {
    for (const Hypergiant hg : all_hypergiants()) {
      total += point.state.flow(hg).degraded * step_hours;
    }
  }
  return total;
}

}  // namespace repro
