// The Section-4 studies, as reusable scenario drivers:
//   * CovidSurge   -- the lockdown surge arithmetic (offnets near capacity,
//                     excess spills to interdomain links);
//   * DiurnalStudy -- the 530-apartment observation: at peak, a larger share
//                     of the same services comes from distant servers;
//   * PniUtilization -- Section 4.2.2: PNI demand vs provisioned capacity;
//   * CascadeStudy -- Section 4.3: fail the facility hosting the most
//                     hypergiants and measure collateral damage on shared
//                     routes.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/spillover.h"

namespace repro {

// ---------------------------------------------------------------- Covid ---

struct CovidSurgeInput {
  /// Share of the hypergiant's traffic served by offnets before the surge
  /// (the study observed 63% for Netflix in some European ISPs).
  double offnet_share_before = 0.63;
  /// Offnet capacity headroom over pre-surge offnet traffic.
  double offnet_headroom = 1.2;
  /// Total demand multiplier during the surge (lockdown: +58%).
  double surge_multiplier = 1.58;
  /// Cache efficiency cap (fraction of traffic offnets *could* serve).
  double cache_efficiency = 0.95;
};

struct CovidSurgeResult {
  double offnet_before = 0.0;       // normalized to pre-surge demand = 1
  double interdomain_before = 0.0;
  double offnet_after = 0.0;
  double interdomain_after = 0.0;

  double offnet_increase_fraction() const noexcept;       // ~ +0.20
  double interdomain_multiplier() const noexcept;         // ~ 2.2x
};

/// Pure arithmetic model of the lockdown surge.
CovidSurgeResult covid_surge(const CovidSurgeInput& input);

// -------------------------------------------------------------- Diurnal ---

struct DiurnalPoint {
  double local_hour = 0.0;
  double total_demand = 0.0;     // Gbps across the apartment population
  double near_fraction = 0.0;    // served from in-ISP offnets ("nearby")
  double far_fraction = 0.0;     // served across interdomain ("distant")
};

struct DiurnalStudyConfig {
  std::uint64_t seed = 530530;
  int apartments = 530;
  double per_apartment_peak_mbps = 12.0;
  /// Offnet capacity as a multiple of the apartments' peak hypergiant load.
  double offnet_headroom = 0.85;  // < 1: offnets saturate at peak
  int hours = 24;
};

/// Simulates a day of apartment traffic against a capacity-limited offnet.
std::vector<DiurnalPoint> diurnal_study(const DiurnalStudyConfig& config);

// ------------------------------------------------------ PNI utilization ---

struct PniUtilizationStats {
  Hypergiant hg = Hypergiant::kGoogle;
  std::size_t isps_with_pni = 0;
  /// Mean of max(0, demand - capacity)/capacity over PNIs whose peak
  /// demand exceeds capacity (the paper: Google >= 13% on average).
  double mean_peak_exceedance = 0.0;
  /// Fraction of PNIs whose peak interdomain demand is >= 2x capacity
  /// (the paper: 10% of Meta PNIs).
  double fraction_demand_2x = 0.0;
  /// Fraction of PNIs with any peak exceedance at all.
  double fraction_exceeded = 0.0;
};

/// Evaluates every ISP with a PNI to `hg`: interdomain demand at local peak
/// (what remains after offnet serving) vs the PNI's provisioned capacity.
PniUtilizationStats pni_utilization(const Internet& internet,
                                    const OffnetRegistry& registry,
                                    const DemandModel& demand,
                                    const CapacityModel& capacity,
                                    Hypergiant hg);

// -------------------------------------------------------------- Cascade ---

struct CascadeOutcome {
  AsIndex isp = kInvalidIndex;
  FacilityIndex failed_facility = kInvalidIndex;
  int hypergiants_in_facility = 0;

  /// Baseline (no failure) and failure-scenario shared-resource state.
  SpilloverResult baseline;
  SpilloverResult failure;

  /// Collateral damage: degradation of non-hypergiant traffic caused by
  /// the failure (failure minus baseline).
  double collateral_degradation() const noexcept;
};

/// Fails the facility hosting the most hypergiants at `isp` during its
/// local evening peak and compares against the no-failure baseline.
CascadeOutcome cascade_study(const Internet& internet,
                             const OffnetRegistry& registry,
                             const DemandModel& demand,
                             const CapacityModel& capacity, AsIndex isp);

}  // namespace repro
