#include "traffic/capacity.h"

#include <cmath>

#include "util/rng.h"

namespace repro {

namespace {

double hash_lognormal(std::uint64_t key, double median, double sigma) noexcept {
  // Box-Muller on two hash-derived uniforms.
  double u1 = static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(mix64(key ^ 0x9e37) >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
  return median * std::exp(sigma * z);
}

}  // namespace

CapacityModel::CapacityModel(const Internet& internet,
                             const OffnetRegistry& registry,
                             const DemandModel& demand, CapacityConfig config)
    : internet_(internet), registry_(registry), demand_(demand), config_(config) {}

double CapacityModel::offnet_capacity_gbps(AsIndex isp, Hypergiant hg) const {
  const Deployment* deployment = registry_.find_deployment(isp, hg);
  if (deployment == nullptr) return 0.0;
  const double cacheable = demand_.hypergiant_peak_demand_gbps(isp, hg) *
                           profile(hg).cache_efficiency;
  const double headroom = hash_lognormal(
      mix64(config_.seed ^ (isp * 7919ULL) ^ static_cast<std::uint64_t>(hg)),
      config_.offnet_headroom_median, config_.offnet_headroom_sigma);
  return cacheable * headroom;
}

double CapacityModel::site_capacity_gbps(AsIndex isp, Hypergiant hg,
                                         FacilityIndex facility) const {
  const Deployment* deployment = registry_.find_deployment(isp, hg);
  if (deployment == nullptr) return 0.0;
  // Pro-rata by server count at the facility.
  std::size_t total = 0;
  std::size_t at_facility = 0;
  for (const std::size_t si : deployment->server_indices) {
    ++total;
    if (registry_.servers()[si].facility == facility) ++at_facility;
  }
  if (total == 0) return 0.0;
  return offnet_capacity_gbps(isp, hg) * static_cast<double>(at_facility) /
         static_cast<double>(total);
}

InterdomainCapacity CapacityModel::interdomain_capacity(AsIndex isp,
                                                        Hypergiant hg) const {
  InterdomainCapacity out;
  const AsIndex hg_as = internet_.as_by_asn(profile(hg).asn);
  for (const LinkIndex li : internet_.ases[isp].peer_links) {
    const InterdomainLink& link = internet_.links[li];
    const AsIndex other = link.a == isp ? link.b : link.a;
    if (other != hg_as) continue;
    if (link.kind == LinkKind::kPrivatePeering) out.pni_gbps += link.capacity_gbps;
    else if (link.kind == LinkKind::kIxpPeering) out.ixp_gbps += link.capacity_gbps;
  }
  out.transit_gbps = total_transit_gbps(isp);
  return out;
}

double CapacityModel::total_transit_gbps(AsIndex isp) const {
  double total = 0.0;
  for (const LinkIndex li : internet_.ases[isp].provider_links) {
    total += internet_.links[li].capacity_gbps;
  }
  return total;
}

}  // namespace repro
