// Capacity provisioning: how much an offnet deployment can serve, and what
// interdomain capacity (PNI, IXP port, transit) an ISP has towards each
// hypergiant. Offnets are provisioned with limited headroom over their share
// of peak demand (Section 4.1: offnets run near capacity), and PNIs with a
// heavy lower tail (Section 4.2.2: frequently insufficient).
#pragma once

#include <cstdint>
#include <optional>

#include "hypergiant/deployment.h"
#include "traffic/demand.h"

namespace repro {

struct CapacityConfig {
  std::uint64_t seed = 808;
  /// Median headroom of an offnet deployment over the hypergiant's
  /// cacheable share of the ISP's peak demand (1.2 = 20% above peak).
  double offnet_headroom_median = 1.2;
  double offnet_headroom_sigma = 0.12;
};

/// Interdomain capacity of an ISP towards one hypergiant, by path type.
struct InterdomainCapacity {
  double pni_gbps = 0.0;       // dedicated private interconnects
  double ixp_gbps = 0.0;       // shared IXP port capacity (total port size)
  double transit_gbps = 0.0;   // provider links (shared with all traffic)
};

/// Deterministic capacity model over ground truth.
class CapacityModel {
 public:
  CapacityModel(const Internet& internet, const OffnetRegistry& registry,
                const DemandModel& demand, CapacityConfig config);

  /// Serving capacity (Gbps) of `hg`'s offnet deployment at `isp`
  /// (0 when there is no deployment). Split across sites pro rata.
  double offnet_capacity_gbps(AsIndex isp, Hypergiant hg) const;

  /// Capacity of one site (facility) of a deployment.
  double site_capacity_gbps(AsIndex isp, Hypergiant hg,
                            FacilityIndex facility) const;

  /// Dedicated and shared interdomain capacity between `isp` and `hg`.
  InterdomainCapacity interdomain_capacity(AsIndex isp, Hypergiant hg) const;

  /// Total provider (transit) capacity of the ISP, all traffic shares it.
  double total_transit_gbps(AsIndex isp) const;

  const CapacityConfig& config() const noexcept { return config_; }

 private:
  const Internet& internet_;
  const OffnetRegistry& registry_;
  const DemandModel& demand_;
  CapacityConfig config_;
};

}  // namespace repro
