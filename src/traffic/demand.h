// Traffic demand model: per-ISP aggregate demand with a diurnal curve, split
// across the hypergiants by their published traffic shares (Section 2.1) and
// a residual "everything else" share.
#pragma once

#include "hypergiant/profile.h"
#include "topology/generator.h"
#include "topology/internet.h"

namespace repro {

/// Diurnal demand multiplier for a local hour in [0, 24): trough ~0.35
/// around 04:00, peak 1.0 at 21:00 (residential eyeball pattern).
double diurnal_multiplier(double local_hour) noexcept;

/// Local hour at a longitude for a given UTC hour.
double local_hour(double utc_hour, double longitude_deg) noexcept;

/// Sum of the four hypergiants' traffic shares (~0.625).
double total_hypergiant_share() noexcept;

/// Demand model over a generated Internet.
class DemandModel {
 public:
  explicit DemandModel(const Internet& internet);

  /// ISP aggregate demand (Gbps) at a UTC hour, using the ISP's primary
  /// metro longitude for the local clock.
  double isp_demand_gbps(AsIndex isp, double utc_hour) const;

  /// Peak aggregate demand (diurnal multiplier = 1).
  double isp_peak_demand_gbps(AsIndex isp) const;

  /// Demand attributable to one hypergiant at a UTC hour.
  double hypergiant_demand_gbps(AsIndex isp, Hypergiant hg, double utc_hour) const;

  /// Peak demand attributable to one hypergiant.
  double hypergiant_peak_demand_gbps(AsIndex isp, Hypergiant hg) const;

  /// Demand of everything that is not one of the four hypergiants.
  double other_demand_gbps(AsIndex isp, double utc_hour) const;

 private:
  const Internet& internet_;
};

}  // namespace repro
