#include "traffic/demand.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace repro {

double diurnal_multiplier(double local_hour_value) noexcept {
  // Smooth curve with trough at 04:00 (0.35) and peak at 21:00 (1.0).
  const double phase =
      2.0 * std::numbers::pi * (local_hour_value - 21.0) / 24.0;
  // cos(phase) = 1 at 21:00, -1 at 09:00; warp to sharpen the evening peak.
  const double base = 0.5 * (1.0 + std::cos(phase));  // [0, 1]
  return 0.35 + 0.65 * std::pow(base, 1.3);
}

double local_hour(double utc_hour, double longitude_deg) noexcept {
  double hour = utc_hour + longitude_deg / 15.0;
  hour = std::fmod(hour, 24.0);
  if (hour < 0.0) hour += 24.0;
  return hour;
}

double total_hypergiant_share() noexcept {
  double total = 0.0;
  for (const Hypergiant hg : all_hypergiants()) total += profile(hg).traffic_share;
  return total;
}

DemandModel::DemandModel(const Internet& internet) : internet_(internet) {}

double DemandModel::isp_peak_demand_gbps(AsIndex isp) const {
  require(isp < internet_.ases.size(), "DemandModel: bad AS index");
  return peak_demand_gbps(internet_.ases[isp].users);
}

double DemandModel::isp_demand_gbps(AsIndex isp, double utc_hour) const {
  const As& as = internet_.ases[isp];
  const double longitude =
      internet_.metros[as.primary_metro].location.longitude_deg;
  return isp_peak_demand_gbps(isp) *
         diurnal_multiplier(local_hour(utc_hour, longitude));
}

double DemandModel::hypergiant_demand_gbps(AsIndex isp, Hypergiant hg,
                                           double utc_hour) const {
  return isp_demand_gbps(isp, utc_hour) * profile(hg).traffic_share;
}

double DemandModel::hypergiant_peak_demand_gbps(AsIndex isp, Hypergiant hg) const {
  return isp_peak_demand_gbps(isp) * profile(hg).traffic_share;
}

double DemandModel::other_demand_gbps(AsIndex isp, double utc_hour) const {
  return isp_demand_gbps(isp, utc_hour) * (1.0 - total_hypergiant_share());
}

}  // namespace repro
