#include "traffic/spillover.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace repro {

namespace {

double drop_fraction(double load, double capacity) noexcept {
  if (load <= capacity || load <= 0.0) return 0.0;
  return (load - capacity) / load;
}

}  // namespace

std::string_view to_string(SharedLinkPolicy policy) noexcept {
  switch (policy) {
    case SharedLinkPolicy::kBestEffort: return "best-effort";
    case SharedLinkPolicy::kIsolation: return "isolation";
  }
  return "?";
}

double SpilloverResult::ixp_drop_fraction() const noexcept {
  return drop_fraction(ixp_load, ixp_capacity);
}

double SpilloverResult::transit_drop_fraction() const noexcept {
  return drop_fraction(transit_load, transit_capacity);
}

double SpilloverResult::other_traffic_degraded_fraction() const noexcept {
  if (policy == SharedLinkPolicy::kIsolation) {
    // Other traffic holds a reservation; it only degrades if it alone
    // exceeds the resource.
    const double ixp_part = other_ixp_load * drop_fraction(other_ixp_load,
                                                           ixp_capacity);
    const double transit_part =
        other_transit_load * drop_fraction(other_transit_load, transit_capacity);
    return other_demand > 0.0 ? (ixp_part + transit_part) / other_demand : 0.0;
  }
  // Best effort: other traffic degrades with everything else on its paths.
  const double via_ixp =
      ixp_capacity > 0.0 ? SpilloverSimulator::kOtherTrafficIxpShare : 0.0;
  return via_ixp * ixp_drop_fraction() +
         (1.0 - via_ixp) * transit_drop_fraction();
}

SpilloverSimulator::SpilloverSimulator(const Internet& internet,
                                       const OffnetRegistry& registry,
                                       const DemandModel& demand,
                                       const CapacityModel& capacity)
    : internet_(internet),
      registry_(registry),
      demand_(demand),
      capacity_(capacity) {}

double SpilloverSimulator::local_peak_utc_hour(AsIndex isp) const {
  require(isp < internet_.ases.size(), "local_peak_utc_hour: bad AS index");
  const double longitude =
      internet_.metros[internet_.ases[isp].primary_metro].location.longitude_deg;
  double utc = 21.0 - longitude / 15.0;
  utc = std::fmod(utc, 24.0);
  if (utc < 0.0) utc += 24.0;
  return utc;
}

SpilloverResult SpilloverSimulator::simulate(
    AsIndex isp, const SpilloverScenario& scenario) const {
  SpilloverResult result;

  // IXP port capacity: per fabric membership, sized to the member.
  for (const Ixp& ixp : internet_.ixps) {
    if (std::find(ixp.members.begin(), ixp.members.end(), isp) !=
        ixp.members.end()) {
      result.ixp_capacity += ixp_member_port_gbps(internet_.ases[isp].users);
    }
  }
  result.transit_capacity = capacity_.total_transit_gbps(isp);

  result.policy = scenario.policy;
  result.other_demand = demand_.other_demand_gbps(isp, scenario.utc_hour);
  const double other_via_ixp =
      result.ixp_capacity > 0.0 ? result.other_demand * kOtherTrafficIxpShare
                                : 0.0;
  result.other_ixp_load = other_via_ixp;
  result.other_transit_load = result.other_demand - other_via_ixp;
  result.ixp_load += other_via_ixp;
  result.transit_load += result.other_demand - other_via_ixp;

  for (const Hypergiant hg : all_hypergiants()) {
    HgFlow& flow = result.flows[static_cast<std::size_t>(hg)];
    flow.demand = demand_.hypergiant_demand_gbps(isp, hg, scenario.utc_hour) *
                  scenario.demand_multiplier[static_cast<std::size_t>(hg)];
    if (flow.demand <= 0.0) continue;

    // 1. Local offnets (surviving sites only).
    const double cacheable = flow.demand * profile(hg).cache_efficiency;
    double available = 0.0;
    if (const Deployment* deployment = registry_.find_deployment(isp, hg)) {
      for (const FacilityIndex site : deployment->sites) {
        if (scenario.failed_facilities.contains(site)) continue;
        available += capacity_.site_capacity_gbps(isp, hg, site);
      }
    }
    flow.offnet = std::min(cacheable, available);
    double remainder = flow.demand - flow.offnet;

    // 2. Dedicated PNIs.
    const InterdomainCapacity inter = capacity_.interdomain_capacity(isp, hg);
    flow.pni = std::min(remainder, inter.pni_gbps);
    remainder -= flow.pni;
    if (remainder <= 0.0) continue;

    // 3. Shared routes: IXP fabric if a peering exists there, else transit.
    if (inter.ixp_gbps > 0.0) {
      flow.ixp = remainder;
      result.ixp_load += remainder;
    } else {
      flow.transit = remainder;
      result.transit_load += remainder;
    }
  }

  // Congestion on shared resources.
  double hg_ixp_drop;
  double hg_transit_drop;
  if (scenario.policy == SharedLinkPolicy::kIsolation) {
    // Other traffic is reserved its share; hypergiant spillover competes
    // only for the remainder and absorbs the whole shortfall itself.
    const double hg_ixp_load = result.ixp_load - result.other_ixp_load;
    const double hg_transit_load =
        result.transit_load - result.other_transit_load;
    const double ixp_left =
        std::max(0.0, result.ixp_capacity - result.other_ixp_load);
    const double transit_left =
        std::max(0.0, result.transit_capacity - result.other_transit_load);
    hg_ixp_drop = drop_fraction(hg_ixp_load, ixp_left);
    hg_transit_drop = drop_fraction(hg_transit_load, transit_left);
  } else {
    // Best effort: everyone on the link degrades proportionally.
    hg_ixp_drop = result.ixp_drop_fraction();
    hg_transit_drop = result.transit_drop_fraction();
  }
  for (HgFlow& flow : result.flows) {
    flow.degraded = flow.ixp * hg_ixp_drop + flow.transit * hg_transit_drop;
  }
  return result;
}

}  // namespace repro
