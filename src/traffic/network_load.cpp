#include "traffic/network_load.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.h"

namespace repro {

NetworkLoadModel::NetworkLoadModel(const Internet& internet,
                                   const OffnetRegistry& registry,
                                   const DemandModel& demand,
                                   const CapacityModel& capacity,
                                   const RoutingEngine& routing,
                                   NetworkLoadConfig config)
    : internet_(internet),
      registry_(registry),
      demand_(demand),
      capacity_(capacity),
      routing_(routing),
      config_(config) {
  require(config_.isp_stride >= 1, "NetworkLoadConfig: stride must be >= 1");
}

NetworkLoadResult NetworkLoadModel::evaluate(
    double utc_hour, const std::set<FacilityIndex>& failed) const {
  NetworkLoadResult result;
  result.link_load.assign(internet_.links.size(), 0.0);

  std::array<AsIndex, kHypergiantCount> hg_as{};
  for (const Hypergiant hg : all_hypergiants()) {
    hg_as[static_cast<std::size_t>(hg)] = internet_.as_by_asn(profile(hg).asn);
  }
  const auto isps = internet_.access_isps();
  std::vector<std::vector<LinkIndex>> paths_used;
  std::vector<std::vector<std::vector<LinkIndex>>> per_isp_paths;
  per_isp_paths.reserve(isps.size() / config_.isp_stride + 1);

  for (std::size_t i = 0; i < isps.size(); i += config_.isp_stride) {
    const AsIndex isp = isps[i];
    ++result.isps_evaluated;
    const RoutingTable table = routing_.routes_to(isp);
    std::vector<std::vector<LinkIndex>> this_isp_paths;

    // Hypergiant interdomain remainders (after surviving offnet serving).
    for (const Hypergiant hg : all_hypergiants()) {
      const double hg_demand = demand_.hypergiant_demand_gbps(isp, hg, utc_hour);
      if (hg_demand <= 0.0) continue;
      double offnet = 0.0;
      if (const Deployment* deployment = registry_.find_deployment(isp, hg)) {
        for (const FacilityIndex site : deployment->sites) {
          if (failed.contains(site)) continue;
          offnet += capacity_.site_capacity_gbps(isp, hg, site);
        }
        offnet = std::min(offnet, hg_demand * profile(hg).cache_efficiency);
      }
      const double remainder = hg_demand - offnet;
      if (remainder <= 0.0) continue;
      const auto links = table.link_path(hg_as[static_cast<std::size_t>(hg)]);
      for (const LinkIndex li : links) result.link_load[li] += remainder;
      if (!links.empty()) this_isp_paths.push_back(links);
      result.total_interdomain_gbps += remainder;
    }

    // Background traffic from the wider Internet: it arrives from diffuse
    // origins, so it spreads over the ISP's provider links in proportion to
    // their capacity (the upstream backbone fabric is not the bottleneck).
    const double other = demand_.other_demand_gbps(isp, utc_hour);
    const As& as = internet_.ases[isp];
    double provider_capacity = 0.0;
    for (const LinkIndex li : as.provider_links) {
      provider_capacity += internet_.links[li].capacity_gbps;
    }
    if (provider_capacity > 0.0) {
      std::vector<LinkIndex> access_links;
      for (const LinkIndex li : as.provider_links) {
        result.link_load[li] += other * internet_.links[li].capacity_gbps /
                                provider_capacity;
        access_links.push_back(li);
      }
      this_isp_paths.push_back(std::move(access_links));
    }
    result.total_interdomain_gbps += other;

    per_isp_paths.push_back(std::move(this_isp_paths));
  }

  // Congestion and affected ISPs.
  std::vector<bool> congested(internet_.links.size(), false);
  for (LinkIndex li = 0; li < internet_.links.size(); ++li) {
    if (result.link_load[li] > internet_.links[li].capacity_gbps) {
      congested[li] = true;
      result.congested_links.push_back(li);
    }
  }
  for (const auto& isp_paths : per_isp_paths) {
    bool hit = false;
    for (const auto& path : isp_paths) {
      for (const LinkIndex li : path) {
        if (congested[li]) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) ++result.isps_on_congested_paths;
  }
  return result;
}

std::vector<FacilityBlastRadius> NetworkLoadModel::blast_radii() const {
  std::map<FacilityIndex, FacilityBlastRadius> radii;
  std::map<FacilityIndex, std::set<AsIndex>> isps_at;
  std::map<FacilityIndex, std::set<Hypergiant>> hgs_at;

  for (const auto& [key, deployment] : registry_.deployments()) {
    const auto [isp, hg] = key;
    std::set<FacilityIndex> sites(deployment.sites.begin(),
                                  deployment.sites.end());
    for (const FacilityIndex site : sites) {
      auto& radius = radii[site];
      radius.facility = site;
      isps_at[site].insert(isp);
      hgs_at[site].insert(hg);
      const double site_capacity = capacity_.site_capacity_gbps(isp, hg, site);
      const double cacheable = demand_.hypergiant_peak_demand_gbps(isp, hg) *
                               profile(hg).cache_efficiency;
      radius.displaced_gbps += std::min(site_capacity, cacheable);
    }
  }

  std::vector<FacilityBlastRadius> out;
  out.reserve(radii.size());
  for (auto& [facility, radius] : radii) {
    radius.isps = isps_at[facility].size();
    radius.hypergiants = hgs_at[facility].size();
    for (const AsIndex isp : isps_at[facility]) {
      radius.users += internet_.ases[isp].users;
    }
    out.push_back(radius);
  }
  std::sort(out.begin(), out.end(),
            [](const FacilityBlastRadius& a, const FacilityBlastRadius& b) {
              return a.displaced_gbps > b.displaced_gbps;
            });
  return out;
}

}  // namespace repro
