// Network-wide load model: place every ISP's hypergiant spillover and
// background traffic onto the actual interdomain links of its BGP paths and
// find the congested links -- the topology-level view of Section 4.3's
// collateral damage (per-ISP spillover only sees the ISP's own edge).
//
// Also computes facility "blast radii" (Section 3.3: "facility-wide outages
// will impact all hosted servers"): how many ISPs, hypergiants, users and
// Gbps a single building takes down.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "route/bgp.h"
#include "traffic/spillover.h"

namespace repro {

struct NetworkLoadConfig {
  /// Evaluate every k-th access ISP (1 = all; larger = faster sampling).
  std::size_t isp_stride = 1;
};

/// Internet-wide evaluation at one instant.
struct NetworkLoadResult {
  /// Per-link load in Gbps (indexed by LinkIndex).
  std::vector<double> link_load;
  double total_interdomain_gbps = 0.0;
  /// Links whose load exceeds capacity.
  std::vector<LinkIndex> congested_links;
  /// ISPs at least one of whose hypergiant paths crosses a congested link.
  std::size_t isps_on_congested_paths = 0;
  std::size_t isps_evaluated = 0;

  double congested_fraction() const noexcept {
    return isps_evaluated == 0
               ? 0.0
               : static_cast<double>(isps_on_congested_paths) / isps_evaluated;
  }
};

/// One facility's blast radius.
struct FacilityBlastRadius {
  FacilityIndex facility = kInvalidIndex;
  std::size_t isps = 0;            // ISPs with offnet servers there
  std::size_t hypergiants = 0;     // distinct hypergiants hosted
  double users = 0.0;              // users of the hosting ISPs
  double displaced_gbps = 0.0;     // peak traffic the facility was serving
};

class NetworkLoadModel {
 public:
  NetworkLoadModel(const Internet& internet, const OffnetRegistry& registry,
                   const DemandModel& demand, const CapacityModel& capacity,
                   const RoutingEngine& routing,
                   NetworkLoadConfig config = {});

  /// Evaluates link loads at `utc_hour` with `failed` facilities down.
  /// Hypergiant interdomain remainders ride the BGP path from the
  /// hypergiant's AS; background (non-hypergiant) traffic rides the path
  /// from a backbone.
  NetworkLoadResult evaluate(double utc_hour,
                             const std::set<FacilityIndex>& failed = {}) const;

  /// Blast radii of all facilities hosting at least one offnet, sorted by
  /// displaced traffic (descending).
  std::vector<FacilityBlastRadius> blast_radii() const;

 private:
  const Internet& internet_;
  const OffnetRegistry& registry_;
  const DemandModel& demand_;
  const CapacityModel& capacity_;
  const RoutingEngine& routing_;
  NetworkLoadConfig config_;
};

}  // namespace repro
