// The end-to-end reproduction pipeline. Owns the generated world and lazily
// builds (and caches) each stage: ground-truth deployments per snapshot,
// TLS populations and scans, discovery reports, the ping mesh, per-ISP
// clusterings per xi, routing, and the traffic models.
//
// Typical use:
//   Pipeline pipeline(Scenario::paper());
//   auto table1 = table1_study(pipeline);            // analyses.h
//   auto table2 = table2_study(pipeline, 0.1);
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "cluster/colocation.h"
#include "core/scenario.h"
#include "route/bgp.h"
#include "scan/classifier.h"
#include "traffic/spillover.h"

namespace repro {

class Pipeline {
 public:
  explicit Pipeline(Scenario scenario);

  const Scenario& scenario() const noexcept { return scenario_; }
  const Internet& internet() const noexcept { return internet_; }

  /// Ground truth (what the measurements must rediscover).
  const OffnetRegistry& registry(Snapshot snapshot) const;

  /// Scan + classify with a methodology (cached per pair).
  const DiscoveryReport& discovery(Snapshot snapshot,
                                   Methodology methodology) const;

  /// Vantage points and ping mesh over the 2023 ground truth.
  const VantagePointSet& vantage_points() const;
  const PingMesh& ping_mesh() const;

  /// Clustering of every 2023 offnet-hosting ISP at a given xi (cached).
  /// Indexed by position in discovery(2023, 2023 methodology) hosting order.
  const std::vector<IspClustering>& clusterings(double xi) const;

  /// Clustering lookup by ISP for a given xi; nullptr if the ISP hosts
  /// nothing (or was not clustered).
  const IspClustering* clustering_of(double xi, AsIndex isp) const;

  /// Routing engine over the world.
  const RoutingEngine& routing() const;

  /// Traffic models over the 2023 ground truth.
  const DemandModel& demand() const;
  const CapacityModel& capacity() const;

  /// ISPs hosting at least one offnet in the 2023 discovery.
  std::vector<AsIndex> hosting_isps_2023() const;

 private:
  Scenario scenario_;
  Internet internet_;

  mutable std::map<Snapshot, OffnetRegistry> registries_;
  mutable std::map<std::pair<Snapshot, Methodology>, DiscoveryReport> reports_;
  mutable std::unique_ptr<VantagePointSet> vps_;
  mutable std::unique_ptr<PingMesh> mesh_;
  mutable std::map<std::uint64_t, std::vector<IspClustering>> clusterings_;
  mutable std::map<std::uint64_t, std::map<AsIndex, std::size_t>> cluster_index_;
  mutable std::unique_ptr<RoutingEngine> routing_;
  mutable std::unique_ptr<DemandModel> demand_;
  mutable std::unique_ptr<CapacityModel> capacity_;
};

}  // namespace repro
