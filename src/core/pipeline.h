// The end-to-end reproduction pipeline. Owns the generated world and lazily
// builds (and caches) each stage: ground-truth deployments per snapshot,
// TLS populations and scans (cached per snapshot, shared across
// methodologies), discovery reports, the ping mesh, per-ISP clusterings per
// xi, routing, and the traffic models.
//
// Degraded-mode execution: a Pipeline can carry a fault::FaultPlan. The
// plan's pathologies are injected at each stage boundary, every stage
// records a fault::StageHealth (ok / degraded / failed with drop counts and
// reasons) instead of aborting the run, and the accumulated health map is
// published as the "fault" section of run_report.json. With an inactive
// plan every stage output is bit-identical to a Pipeline built without one.
//
// Warm starts: with an artifact store attached (REPRO_STORE=/path, or the
// explicit constructor), the heavy stages -- TLS population, scan records,
// per-ISP latency matrices, clusterings -- consult the store before
// computing and publish after. Artifacts are keyed by a digest over the
// measurement-relevant scenario config, the fault plan, and the per-stage
// parameters, so a warm hit is bit-identical to the cold compute (enforced
// by tests/test_store.cpp). A corrupt or stale artifact falls back to
// recompute and records a degraded StageHealth instead of throwing. With no
// store attached (the default) behaviour is bit-identical to before the
// store existed. See docs/PERSISTENCE.md.
//
// Thread safety: every lazy accessor serializes stage computation behind one
// recursive mutex, so a Pipeline can sit resident inside the report service
// (src/serve/) with many reader threads asking for stages concurrently --
// the first caller computes, the rest see the cached result. The mutex is
// recursive because stages force each other (discovery -> scan -> population
// -> registry). The clustering fan-out's pool workers never touch the
// accessors (they run on captured references), so the caller holding the
// stage mutex while participating in the parallel region cannot deadlock
// against its own workers. Cross-pipeline concurrency (the common service
// shape: different worlds resident over one store) needs no coordination
// beyond the store's own locking.
//
// Typical use:
//   Pipeline pipeline(Scenario::paper());
//   auto table1 = table1_study(pipeline);            // analyses.h
//   auto table2 = table2_study(pipeline, 0.1);
//
//   Pipeline chaos(Scenario::paper(), fault::FaultPlan::chaos());
//   auto degraded = table1_study(chaos);             // never throws
//   chaos.overall_status();                          // kDegraded
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cluster/colocation.h"
#include "core/scenario.h"
#include "fault/fault_plan.h"
#include "fault/stage_health.h"
#include "rdns/ptr_store.h"
#include "route/bgp.h"
#include "route/peering_inference.h"
#include "scan/classifier.h"
#include "traffic/spillover.h"

namespace repro::store {
class ArtifactStore;
}  // namespace repro::store

namespace repro {

class Pipeline {
 public:
  explicit Pipeline(Scenario scenario);
  Pipeline(Scenario scenario, fault::FaultPlan plan);
  /// Pipeline over an explicit artifact store (tests and benchmarks; the
  /// two-argument constructors use store::ArtifactStore::from_env(), i.e.
  /// the REPRO_STORE environment toggles). `artifacts` may be nullptr.
  Pipeline(Scenario scenario, fault::FaultPlan plan,
           std::shared_ptr<store::ArtifactStore> artifacts);
  ~Pipeline();

  const Scenario& scenario() const noexcept { return scenario_; }
  const Internet& internet() const noexcept { return internet_; }

  /// The fault plan this pipeline runs under (inactive by default).
  const fault::FaultPlan& fault_plan() const noexcept { return plan_; }

  /// The attached artifact store; nullptr when persistence is off.
  store::ArtifactStore* artifact_store() const noexcept {
    return artifacts_.get();
  }

  /// Digest over (measurement config, fault plan measurement_json); every
  /// persisted artifact key derives from it. Two pipelines with equal world
  /// digests share warm artifacts byte-for-byte -- the identity the
  /// ArtifactResolver (src/serve/) keys residency and reuse on.
  std::uint64_t world_digest() const noexcept { return world_digest_; }

  /// Health of every stage executed so far, keyed by stage name
  /// ("tls_population", "scan", "discovery", "ping_mesh", "clustering",
  /// "rdns", "peering").
  const std::map<std::string, fault::StageHealth>& stage_health() const noexcept {
    return health_;
  }

  /// Worst status across all executed stages (kOk before any stage ran).
  fault::StageStatus overall_status() const noexcept {
    return fault::overall_status(health_);
  }

  /// Ground truth (what the measurements must rediscover).
  const OffnetRegistry& registry(Snapshot snapshot) const;

  /// TLS population for a snapshot (cached; cert faults applied once).
  const CertStore& population(Snapshot snapshot) const;

  /// Scan records for a snapshot (cached; the scan and its faults run once
  /// per snapshot, not once per (snapshot, methodology) pair).
  const std::vector<ScanRecord>& scan_records(Snapshot snapshot) const;

  /// Scan + classify with a methodology (cached per pair).
  const DiscoveryReport& discovery(Snapshot snapshot,
                                   Methodology methodology) const;

  /// Vantage points and ping mesh over the 2023 ground truth.
  const VantagePointSet& vantage_points() const;
  const PingMesh& ping_mesh() const;

  /// One ISP's vantage-point latency matrix, individually addressable: the
  /// xi-independent half of the clustering stage, fetched through the
  /// store's single-flight load_or_compute path exactly like the fan-out
  /// does (compute on miss, publish, self-heal corruption), or measured
  /// directly with no store attached. Returns by value -- the store is the
  /// cache; the pipeline keeps no per-matrix heap residency.
  LatencyMatrix isp_latency_matrix(AsIndex isp) const;

  /// Clustering of every 2023 offnet-hosting ISP at a given xi (cached).
  /// Indexed by position in discovery(2023, 2023 methodology) hosting order.
  const std::vector<IspClustering>& clusterings(double xi) const;

  /// Clustering lookup by ISP for a given xi; nullptr if the ISP hosts
  /// nothing (or was not clustered).
  const IspClustering* clustering_of(double xi, AsIndex isp) const;

  /// Routing engine over the world.
  const RoutingEngine& routing() const;

  /// PTR corpus over the 2023 ground truth (cached; the plan's rDNS faults
  /// are folded into the synthesizer exactly once and recorded as the
  /// "rdns" StageHealth).
  const PtrStore& ptr_store() const;

  /// Section 4.2.1 peering evidence for one hypergiant (cached per HG; the
  /// traceroute engine carries the plan's BGP-flap faults, and instability
  /// downgrades are recorded as the "peering" StageHealth).
  const std::map<AsIndex, IspPeeringEvidence>& peering_study(Hypergiant hg) const;

  /// Traffic models over the 2023 ground truth.
  const DemandModel& demand() const;
  const CapacityModel& capacity() const;

  /// ISPs hosting at least one offnet in the 2023 discovery.
  std::vector<AsIndex> hosting_isps_2023() const;

  // --- multi-process shard mode (examples/repro-shard, docs/SCALING.md) ---
  //
  // The clustering stage partitions its hosting ISPs across `shard_count`
  // cooperating processes. Each worker process runs
  // compute_clustering_shard() for its shard index and publishes the
  // outcomes (plus its domain-counter deltas) as a "clustershard" artifact;
  // the parent then runs merge_clustering_shards(), which replays every
  // shard's outcomes through the exact ISP-ordered merge the single-process
  // fan-out uses. Results, StageHealth and domain counters are bit-identical
  // to a single-process run for every shard count (tests/test_scale.cpp).

  /// Deterministic shard assignment: which of `shard_count` shards owns
  /// `isp`. Pure function of (measurement digest, isp), so every process
  /// agrees on the partition without coordination.
  static std::size_t shard_of(std::uint64_t measurement_digest, AsIndex isp,
                              std::size_t shard_count) noexcept;

  /// Worker half: clusters only the hosting ISPs this shard owns and
  /// publishes the outcomes as a "clustershard" artifact in the attached
  /// store (the shared medium between shard processes). Requires a store.
  void compute_clustering_shard(std::size_t shard, std::size_t shard_count,
                                double xi = 0.1) const;

  /// Parent half: loads every shard's artifact (recomputing a missing or
  /// corrupt shard in-process), replays the per-shard counter deltas, and
  /// runs the canonical ISP-ordered merge. Afterwards clusterings(xi) for
  /// the batch's xis answers from the in-process cache.
  void merge_clustering_shards(std::size_t shard_count, double xi = 0.1) const;

 private:
  /// Outcome slot of one ISP's clustering fan-out task.
  struct IspOutcome {
    std::vector<IspClustering> per_xi;
    bool failed = false;
    std::string error;
  };

  /// Fan-out result: per-ISP outcomes plus the corrupt-matrix recoveries
  /// the workers performed along the way.
  struct ClusterFanout {
    std::vector<IspOutcome> outcomes;
    std::uint64_t corrupt_matrices = 0;
  };

  /// Runs the per-ISP clustering fan-out over the thread pool. Pure with
  /// respect to pipeline state other than lazily forcing the mesh/registry
  /// stages; records no health (the merge does).
  ClusterFanout cluster_isps(const std::vector<AsIndex>& isps,
                             std::span<const double> xis) const;

  /// Lock-free matrix fetch shared by the public isp_latency_matrix() and
  /// the fan-out's pool workers: store single-flight when attached, direct
  /// measurement otherwise. Takes the already-forced registry/mesh by
  /// reference so worker threads never re-enter the locked accessors.
  LatencyMatrix fetch_isp_matrix(const OffnetRegistry& reg,
                                 const PingMesh& mesh, AsIndex isp,
                                 std::atomic<std::uint64_t>& corrupt) const;

  /// Deterministic ISP-ordered merge of fan-out outcomes: aggregates the
  /// clustering StageHealth, publishes the per-xi clustering artifacts,
  /// folds in corruption notes, and fills the in-process caches. Returns
  /// the clusterings for `key`.
  const std::vector<IspClustering>& merge_isp_outcomes(
      const std::vector<AsIndex>& isps, std::span<const double> xis,
      ClusterFanout fanout, const std::string& corruption,
      std::uint64_t key) const;

  /// Spill-file path for one ISP's streamed latency matrix (.mmx).
  std::string stream_spill_path(AsIndex isp) const;
  /// Folds a stage's health record into the map, bumps the fault counters,
  /// and republishes the run-report "fault" section. Thread-safe: stages
  /// that fan work across the thread pool may record health concurrently.
  void record_health(const std::string& stage, fault::StageHealth health) const;

  Scenario scenario_;
  fault::FaultPlan plan_;
  Internet internet_;
  std::shared_ptr<store::ArtifactStore> artifacts_;
  /// Digest over (measurement config, fault plan); every artifact key
  /// derives from it.
  std::uint64_t world_digest_ = 0;

  /// Directory holding .mmx latency-matrix spills when the scenario streams
  /// matrices (empty = streaming off). Rooted under the artifact store
  /// (<root>/stream, persists across runs as a rebuildable cache) or, with
  /// no writable store, a private temp directory removed by the destructor.
  std::string stream_dir_;
  bool owns_stream_dir_ = false;

  /// Serializes the lazy stage accessors (recursive: stages force each
  /// other). Never taken by pool-worker bodies, so the fan-out caller can
  /// hold it across parallel_for_blocks. Ordering: stage_mutex_ before
  /// health_mutex_, never the reverse.
  mutable std::recursive_mutex stage_mutex_;
  mutable std::mutex health_mutex_;
  mutable std::map<std::string, fault::StageHealth> health_;
  mutable std::map<Snapshot, OffnetRegistry> registries_;
  mutable std::map<Snapshot, CertStore> populations_;
  mutable std::map<Snapshot, std::vector<ScanRecord>> scans_;
  mutable std::map<std::pair<Snapshot, Methodology>, DiscoveryReport> reports_;
  mutable std::unique_ptr<VantagePointSet> vps_;
  mutable std::unique_ptr<PingMesh> mesh_;
  mutable std::map<std::uint64_t, std::vector<IspClustering>> clusterings_;
  mutable std::map<std::uint64_t, std::map<AsIndex, std::size_t>> cluster_index_;
  mutable std::unique_ptr<RoutingEngine> routing_;
  mutable std::unique_ptr<DemandModel> demand_;
  mutable std::unique_ptr<CapacityModel> capacity_;
  mutable std::unique_ptr<PtrStore> ptr_;
  mutable std::unique_ptr<TracerouteEngine> traceroute_engine_;
  mutable std::unique_ptr<IxpRegistry> ixp_registry_;
  mutable std::map<Hypergiant, std::map<AsIndex, IspPeeringEvidence>> peering_;
};

}  // namespace repro
