// The end-to-end reproduction pipeline. Owns the generated world and lazily
// builds (and caches) each stage: ground-truth deployments per snapshot,
// TLS populations and scans (cached per snapshot, shared across
// methodologies), discovery reports, the ping mesh, per-ISP clusterings per
// xi, routing, and the traffic models.
//
// Degraded-mode execution: a Pipeline can carry a fault::FaultPlan. The
// plan's pathologies are injected at each stage boundary, every stage
// records a fault::StageHealth (ok / degraded / failed with drop counts and
// reasons) instead of aborting the run, and the accumulated health map is
// published as the "fault" section of run_report.json. With an inactive
// plan every stage output is bit-identical to a Pipeline built without one.
//
// Warm starts: with an artifact store attached (REPRO_STORE=/path, or the
// explicit constructor), the heavy stages -- TLS population, scan records,
// per-ISP latency matrices, clusterings -- consult the store before
// computing and publish after. Artifacts are keyed by a digest over the
// measurement-relevant scenario config, the fault plan, and the per-stage
// parameters, so a warm hit is bit-identical to the cold compute (enforced
// by tests/test_store.cpp). A corrupt or stale artifact falls back to
// recompute and records a degraded StageHealth instead of throwing. With no
// store attached (the default) behaviour is bit-identical to before the
// store existed. See docs/PERSISTENCE.md.
//
// Typical use:
//   Pipeline pipeline(Scenario::paper());
//   auto table1 = table1_study(pipeline);            // analyses.h
//   auto table2 = table2_study(pipeline, 0.1);
//
//   Pipeline chaos(Scenario::paper(), fault::FaultPlan::chaos());
//   auto degraded = table1_study(chaos);             // never throws
//   chaos.overall_status();                          // kDegraded
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/colocation.h"
#include "core/scenario.h"
#include "fault/fault_plan.h"
#include "fault/stage_health.h"
#include "rdns/ptr_store.h"
#include "route/bgp.h"
#include "route/peering_inference.h"
#include "scan/classifier.h"
#include "traffic/spillover.h"

namespace repro::store {
class ArtifactStore;
}  // namespace repro::store

namespace repro {

class Pipeline {
 public:
  explicit Pipeline(Scenario scenario);
  Pipeline(Scenario scenario, fault::FaultPlan plan);
  /// Pipeline over an explicit artifact store (tests and benchmarks; the
  /// two-argument constructors use store::ArtifactStore::from_env(), i.e.
  /// the REPRO_STORE environment toggles). `artifacts` may be nullptr.
  Pipeline(Scenario scenario, fault::FaultPlan plan,
           std::shared_ptr<store::ArtifactStore> artifacts);

  const Scenario& scenario() const noexcept { return scenario_; }
  const Internet& internet() const noexcept { return internet_; }

  /// The fault plan this pipeline runs under (inactive by default).
  const fault::FaultPlan& fault_plan() const noexcept { return plan_; }

  /// The attached artifact store; nullptr when persistence is off.
  store::ArtifactStore* artifact_store() const noexcept {
    return artifacts_.get();
  }

  /// Health of every stage executed so far, keyed by stage name
  /// ("tls_population", "scan", "discovery", "ping_mesh", "clustering",
  /// "rdns", "peering").
  const std::map<std::string, fault::StageHealth>& stage_health() const noexcept {
    return health_;
  }

  /// Worst status across all executed stages (kOk before any stage ran).
  fault::StageStatus overall_status() const noexcept {
    return fault::overall_status(health_);
  }

  /// Ground truth (what the measurements must rediscover).
  const OffnetRegistry& registry(Snapshot snapshot) const;

  /// TLS population for a snapshot (cached; cert faults applied once).
  const CertStore& population(Snapshot snapshot) const;

  /// Scan records for a snapshot (cached; the scan and its faults run once
  /// per snapshot, not once per (snapshot, methodology) pair).
  const std::vector<ScanRecord>& scan_records(Snapshot snapshot) const;

  /// Scan + classify with a methodology (cached per pair).
  const DiscoveryReport& discovery(Snapshot snapshot,
                                   Methodology methodology) const;

  /// Vantage points and ping mesh over the 2023 ground truth.
  const VantagePointSet& vantage_points() const;
  const PingMesh& ping_mesh() const;

  /// Clustering of every 2023 offnet-hosting ISP at a given xi (cached).
  /// Indexed by position in discovery(2023, 2023 methodology) hosting order.
  const std::vector<IspClustering>& clusterings(double xi) const;

  /// Clustering lookup by ISP for a given xi; nullptr if the ISP hosts
  /// nothing (or was not clustered).
  const IspClustering* clustering_of(double xi, AsIndex isp) const;

  /// Routing engine over the world.
  const RoutingEngine& routing() const;

  /// PTR corpus over the 2023 ground truth (cached; the plan's rDNS faults
  /// are folded into the synthesizer exactly once and recorded as the
  /// "rdns" StageHealth).
  const PtrStore& ptr_store() const;

  /// Section 4.2.1 peering evidence for one hypergiant (cached per HG; the
  /// traceroute engine carries the plan's BGP-flap faults, and instability
  /// downgrades are recorded as the "peering" StageHealth).
  const std::map<AsIndex, IspPeeringEvidence>& peering_study(Hypergiant hg) const;

  /// Traffic models over the 2023 ground truth.
  const DemandModel& demand() const;
  const CapacityModel& capacity() const;

  /// ISPs hosting at least one offnet in the 2023 discovery.
  std::vector<AsIndex> hosting_isps_2023() const;

 private:
  /// Folds a stage's health record into the map, bumps the fault counters,
  /// and republishes the run-report "fault" section. Thread-safe: stages
  /// that fan work across the thread pool may record health concurrently.
  void record_health(const std::string& stage, fault::StageHealth health) const;

  Scenario scenario_;
  fault::FaultPlan plan_;
  Internet internet_;
  std::shared_ptr<store::ArtifactStore> artifacts_;
  /// Digest over (measurement config, fault plan); every artifact key
  /// derives from it.
  std::uint64_t world_digest_ = 0;

  mutable std::mutex health_mutex_;
  mutable std::map<std::string, fault::StageHealth> health_;
  mutable std::map<Snapshot, OffnetRegistry> registries_;
  mutable std::map<Snapshot, CertStore> populations_;
  mutable std::map<Snapshot, std::vector<ScanRecord>> scans_;
  mutable std::map<std::pair<Snapshot, Methodology>, DiscoveryReport> reports_;
  mutable std::unique_ptr<VantagePointSet> vps_;
  mutable std::unique_ptr<PingMesh> mesh_;
  mutable std::map<std::uint64_t, std::vector<IspClustering>> clusterings_;
  mutable std::map<std::uint64_t, std::map<AsIndex, std::size_t>> cluster_index_;
  mutable std::unique_ptr<RoutingEngine> routing_;
  mutable std::unique_ptr<DemandModel> demand_;
  mutable std::unique_ptr<CapacityModel> capacity_;
  mutable std::unique_ptr<PtrStore> ptr_;
  mutable std::unique_ptr<TracerouteEngine> traceroute_engine_;
  mutable std::unique_ptr<IxpRegistry> ixp_registry_;
  mutable std::map<Hypergiant, std::map<AsIndex, IspPeeringEvidence>> peering_;
};

}  // namespace repro
