#include "core/analyses.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/strings.h"
#include "util/table.h"

namespace repro {

namespace {

std::string pct(double fraction, int decimals = 1) {
  return format_percent(fraction, decimals);
}

}  // namespace

// ----------------------------------------------------------- Table 1 ------

Table1Study table1_study(const Pipeline& pipeline) {
  Table1Study study;
  const DiscoveryReport& report_2021 =
      pipeline.discovery(Snapshot::k2021, Methodology::k2021);
  const DiscoveryReport& report_2023 =
      pipeline.discovery(Snapshot::k2023, Methodology::k2023);
  const DiscoveryReport& report_2023_old =
      pipeline.discovery(Snapshot::k2023, Methodology::k2021);

  for (const Hypergiant hg : all_hypergiants()) {
    Table1Row row;
    row.hg = hg;
    row.isps_2021 = report_2021.footprint(hg).isp_count();
    row.isps_2023 = report_2023.footprint(hg).isp_count();
    row.isps_2023_old_method = report_2023_old.footprint(hg).isp_count();
    study.rows.push_back(row);
  }
  study.total_offnet_ips_2023 = report_2023.total_offnet_ips();
  study.total_hosting_isps_2023 = report_2023.isps_hosting_at_least(1).size();
  return study;
}

std::string render(const Table1Study& study) {
  TextTable table({"Hypergiant", "ISPs 2021", "ISPs 2023", "growth",
                   "2023 w/ 2021 method"});
  for (const Table1Row& row : study.rows) {
    table.add_row({std::string(to_string(row.hg)),
                   with_commas(static_cast<long long>(row.isps_2021)),
                   with_commas(static_cast<long long>(row.isps_2023)),
                   (row.growth_percent() >= 0 ? "+" : "") +
                       format_fixed(row.growth_percent(), 1) + "%",
                   with_commas(static_cast<long long>(row.isps_2023_old_method))});
  }
  std::string out = "Table 1: # of ISPs hosting offnets, 2021 vs 2023\n";
  out += table.render();
  out += "\nTotals (2023 snapshot): " +
         with_commas(static_cast<long long>(study.total_offnet_ips_2023)) +
         " offnet IPs across " +
         with_commas(static_cast<long long>(study.total_hosting_isps_2023)) +
         " ISPs\n";
  out +=
      "(last column: the outdated 2021 fingerprints miss Google entirely and\n"
      " most of Meta in the 2023 snapshot -- the paper's methodology update)\n";
  return out;
}

// ---------------------------------------------------------- Figure 1 ------

Figure1Study figure1_study(const Pipeline& pipeline) {
  Figure1Study study;
  const DiscoveryReport& report =
      pipeline.discovery(Snapshot::k2023, Methodology::k2023);
  const Internet& net = pipeline.internet();

  study.isps_ge1 = report.isps_hosting_at_least(1).size();
  study.isps_ge2 = report.isps_hosting_at_least(2).size();
  study.isps_ge3 = report.isps_hosting_at_least(3).size();
  study.isps_eq4 = report.isps_hosting_at_least(4).size();

  struct Accumulator {
    double users = 0.0;
    double users_ge2 = 0.0;
    double users_ge3 = 0.0;
    double users_eq4 = 0.0;
  };
  std::vector<Accumulator> per_country(all_countries().size());
  for (const AsIndex isp : net.access_isps()) {
    const As& as = net.ases[isp];
    auto& acc = per_country[as.country];
    acc.users += as.users;
    const int hosted = report.hypergiants_at(isp);
    if (hosted >= 2) acc.users_ge2 += as.users;
    if (hosted >= 3) acc.users_ge3 += as.users;
    if (hosted >= 4) acc.users_eq4 += as.users;
  }
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    const auto& acc = per_country[ci];
    if (acc.users <= 0.0) continue;
    CountryHostingRow row;
    row.code = std::string(all_countries()[ci].code);
    row.name = std::string(all_countries()[ci].name);
    row.users_m = acc.users / 1e6;
    row.frac_ge2 = acc.users_ge2 / acc.users;
    row.frac_ge3 = acc.users_ge3 / acc.users;
    row.frac_eq4 = acc.users_eq4 / acc.users;
    study.countries.push_back(std::move(row));
  }
  std::sort(study.countries.begin(), study.countries.end(),
            [](const CountryHostingRow& a, const CountryHostingRow& b) {
              return a.users_m > b.users_m;
            });
  return study;
}

std::string render(const Figure1Study& study, std::size_t max_countries) {
  std::string out =
      "Figure 1: per-country Internet user population in ISPs hosting offnets\n"
      "from multiple of Akamai, Google, Netflix, Meta (2023 snapshot)\n\n";
  out += "ISPs hosting >=1 hypergiant: " + with_commas((long long)study.isps_ge1) +
         ", >=2: " + with_commas((long long)study.isps_ge2) +
         ", >=3: " + with_commas((long long)study.isps_ge3) +
         ", all 4: " + with_commas((long long)study.isps_eq4) + "\n\n";
  TextTable table({"Country", "users (M)", ">=2 HGs", ">=3 HGs", "all 4"});
  std::size_t shown = 0;
  for (const CountryHostingRow& row : study.countries) {
    if (shown++ >= max_countries) break;
    table.add_row({row.code + " " + row.name, format_fixed(row.users_m, 1),
                   pct(row.frac_ge2), pct(row.frac_ge3), pct(row.frac_eq4)});
  }
  out += table.render();
  return out;
}

// ----------------------------------------------------------- Table 2 ------

Table2Study table2_study(const Pipeline& pipeline, std::span<const double> xis) {
  Table2Study study;
  const DiscoveryReport& report =
      pipeline.discovery(Snapshot::k2023, Methodology::k2023);
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);

  for (const Hypergiant hg : all_hypergiants()) {
    for (const double xi : xis) {
      Table2Row row;
      row.hg = hg;
      row.xi = xi;
      std::size_t sole = 0;
      std::size_t bucket[4] = {0, 0, 0, 0};
      for (const auto& [isp, ips] : report.footprint(hg).by_isp) {
        (void)ips;
        const IspClustering* clustering = pipeline.clustering_of(xi, isp);
        if (clustering == nullptr || !clustering->usable) continue;
        const HgColocation colocation = colocation_of(*clustering, registry, hg);
        if (colocation.total_ips == 0) continue;
        ++row.isp_count;
        if (report.hypergiants_at(isp) <= 1) {
          ++sole;
          continue;
        }
        const double fraction = colocation.fraction();
        if (fraction <= 0.0) ++bucket[0];
        else if (fraction < 0.5) ++bucket[1];
        else if (fraction < 1.0) ++bucket[2];
        else ++bucket[3];
      }
      if (row.isp_count > 0) {
        const double denom = static_cast<double>(row.isp_count);
        row.sole_pct = 100.0 * sole / denom;
        row.coloc_0_pct = 100.0 * bucket[0] / denom;
        row.coloc_mid_low_pct = 100.0 * bucket[1] / denom;
        row.coloc_mid_high_pct = 100.0 * bucket[2] / denom;
        row.coloc_full_pct = 100.0 * bucket[3] / denom;
      }
      study.rows.push_back(row);
    }
  }
  return study;
}

std::string render(const Table2Study& study) {
  std::string out =
      "Table 2: % of ISPs hosting each hypergiant, bucketed by the share of\n"
      "its offnets colocated with another hypergiant's offnets\n";
  TextTable table({"Hypergiant", "xi", "sole HG", "0%", "(0,50)%", "[50,100)%",
                   "100%", "#ISPs"});
  for (const Table2Row& row : study.rows) {
    table.add_row({std::string(to_string(row.hg)), format_fixed(row.xi, 1),
                   format_fixed(row.sole_pct, 0) + "%",
                   format_fixed(row.coloc_0_pct, 0) + "%",
                   format_fixed(row.coloc_mid_low_pct, 0) + "%",
                   format_fixed(row.coloc_mid_high_pct, 0) + "%",
                   format_fixed(row.coloc_full_pct, 0) + "%",
                   with_commas((long long)row.isp_count)});
  }
  out += table.render();
  return out;
}

// ---------------------------------------------------------- Figure 2 ------

double best_facility_fraction(const IspClustering& clustering,
                              const OffnetRegistry& registry) {
  if (!clustering.usable || clustering.registry_indices.empty()) return 0.0;
  std::map<int, std::set<Hypergiant>> by_cluster;
  double best = 0.0;
  for (std::size_t i = 0; i < clustering.registry_indices.size(); ++i) {
    const Hypergiant hg =
        registry.servers()[clustering.registry_indices[i]].hg;
    const int label = clustering.labels[i];
    if (label < 0) {
      // A lone (noise) IP is still a facility serving its hypergiant.
      best = std::max(best, offnet_serveable_traffic_fraction(hg));
    } else {
      by_cluster[label].insert(hg);
    }
  }
  for (const auto& [label, hgs] : by_cluster) {
    (void)label;
    double total = 0.0;
    for (const Hypergiant hg : hgs) total += offnet_serveable_traffic_fraction(hg);
    best = std::max(best, total);
  }
  return best;
}

Figure2Study figure2_study(const Pipeline& pipeline, std::span<const double> xis) {
  Figure2Study study;
  const Internet& net = pipeline.internet();
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  const double total_users = net.total_access_users();

  double hosting_users = 0.0;
  for (const AsIndex isp : pipeline.hosting_isps_2023()) {
    hosting_users += net.ases[isp].users;
  }
  study.users_in_offnet_isps = hosting_users / total_users;

  for (const double xi : xis) {
    Figure2Series series;
    series.xi = xi;
    std::vector<double> fractions;
    std::vector<double> weights;
    double analyzable_users = 0.0;
    double users_ge_quarter = 0.0;
    double users_all_four = 0.0;
    for (const AsIndex isp : pipeline.hosting_isps_2023()) {
      const IspClustering* clustering = pipeline.clustering_of(xi, isp);
      if (clustering == nullptr || !clustering->usable) continue;
      const double users = net.ases[isp].users;
      analyzable_users += users;
      const double fraction = best_facility_fraction(*clustering, registry);
      fractions.push_back(fraction);
      weights.push_back(users);
      if (fraction >= 0.25) users_ge_quarter += users;
      // "All four": the best cluster contains every hypergiant. The sum of
      // all four serveable fractions is ~0.52; use a threshold just below.
      if (fraction >= 0.50) users_all_four += users;
    }
    series.ccdf = weighted_ccdf(fractions, weights);
    if (analyzable_users > 0.0) {
      series.users_frac_ge_quarter = users_ge_quarter / analyzable_users;
      series.users_frac_all_four = users_all_four / analyzable_users;
    }
    study.users_analyzable = analyzable_users / total_users;
    study.series.push_back(std::move(series));
  }
  return study;
}

std::string render(const Figure2Study& study) {
  std::string out =
      "Figure 2: CCDF (over users in analyzable ISPs) of the estimated\n"
      "fraction of a user's traffic serveable from one facility\n\n";
  out += "Users in ISPs with offnets: " + pct(study.users_in_offnet_isps) +
         " of all users; analyzable: " + pct(study.users_analyzable) + "\n\n";
  TextTable table({"fraction x", "CCDF (xi=" +
                                     format_fixed(study.series.front().xi, 1) + ")",
                   study.series.size() > 1
                       ? "CCDF (xi=" + format_fixed(study.series.back().xi, 1) + ")"
                       : "-"});
  for (double x = 0.0; x <= 0.551; x += 0.05) {
    std::vector<std::string> cells{format_fixed(x, 2)};
    for (const Figure2Series& series : study.series) {
      cells.push_back(format_fixed(ccdf_at(series.ccdf, x), 3));
    }
    table.add_row(std::move(cells));
  }
  out += table.render();
  for (const Figure2Series& series : study.series) {
    out += "\nxi=" + format_fixed(series.xi, 1) + ": " +
           pct(series.users_frac_ge_quarter) +
           " of analyzable users can get >=25% of traffic from one facility; " +
           pct(series.users_frac_all_four) + " have an all-four facility (52%)";
  }
  out += "\n";
  return out;
}

// ------------------------------------------------- Validation (S3.2) ------

ValidationStudy validation_study(const Pipeline& pipeline, double xi) {
  ValidationStudy study;
  study.xi = xi;
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  // Shared pipeline corpus: carries the fault plan's rDNS pathologies and
  // records the "rdns" StageHealth exactly once.
  const PtrStore& ptr = pipeline.ptr_store();

  Hoiho raw(pipeline.internet());
  study.without_corrections = validate_clusters(
      pipeline.internet(), registry, pipeline.clusterings(xi), ptr, raw);

  Hoiho corrected(pipeline.internet());
  corrected.apply_manual_corrections();
  study.with_corrections = validate_clusters(
      pipeline.internet(), registry, pipeline.clusterings(xi), ptr, corrected);
  return study;
}

std::string render(const ValidationStudy& study) {
  const auto row = [](const char* label, const ValidationSummary& summary) {
    return std::vector<std::string>{
        label,
        with_commas((long long)summary.clusters_with_hints),
        with_commas((long long)summary.single_city),
        with_commas((long long)summary.single_metro_area),
        with_commas((long long)summary.multi_city_same_country),
        with_commas((long long)summary.multi_country),
        format_percent(summary.consistent_fraction(), 1),
        format_percent(summary.hint_coverage(), 1),
        format_percent(summary.confidence(), 1)};
  };
  std::string out = "Validation via rDNS location hints (xi=" +
                    format_fixed(study.xi, 1) + ")\n";
  TextTable table({"HOIHO variant", ">=2 hints", "single city", "metro area",
                   "multi-city", "multi-country", "consistent", "hint cov",
                   "confidence"});
  table.add_row(row("raw", study.without_corrections));
  table.add_row(row("manually corrected", study.with_corrections));
  out += table.render();
  return out;
}

// ------------------------------------------------ Longitudinal (S3.1) -----

LongitudinalStudy longitudinal_study(const Pipeline& pipeline, int first_year,
                                     int last_year) {
  LongitudinalStudy study;
  const DeploymentPolicy policy(pipeline.internet(),
                                pipeline.scenario().deployment);
  for (int year = first_year; year <= last_year; ++year) {
    LongitudinalRow row;
    row.year = year;
    std::map<AsIndex, int> hg_count;
    for (const Hypergiant hg : all_hypergiants()) {
      const auto footprint = policy.footprint_for_year(hg, year);
      row.isps_per_hg[static_cast<std::size_t>(hg)] = footprint.size();
      for (const AsIndex isp : footprint) ++hg_count[isp];
    }
    row.hosting_isps = hg_count.size();
    int total = 0;
    for (const auto& [isp, count] : hg_count) {
      (void)isp;
      total += count;
      if (count >= 2) ++row.isps_ge2;
      if (count >= 3) ++row.isps_ge3;
      if (count >= 4) ++row.isps_eq4;
    }
    if (!hg_count.empty()) {
      row.mean_hypergiants_per_hosting_isp =
          static_cast<double>(total) / hg_count.size();
    }
    study.rows.push_back(row);
  }
  return study;
}

std::string render(const LongitudinalStudy& study) {
  std::string out =
      "Longitudinal footprints (growth model anchored on Table 1)\n";
  TextTable table({"year", "Google", "Netflix", "Meta", "Akamai", "hosting",
                   ">=2", ">=3", "all 4", "mean HGs/ISP"});
  for (const LongitudinalRow& row : study.rows) {
    table.add_row({std::to_string(row.year),
                   with_commas((long long)row.isps_per_hg[0]),
                   with_commas((long long)row.isps_per_hg[1]),
                   with_commas((long long)row.isps_per_hg[2]),
                   with_commas((long long)row.isps_per_hg[3]),
                   with_commas((long long)row.hosting_isps),
                   with_commas((long long)row.isps_ge2),
                   with_commas((long long)row.isps_ge3),
                   with_commas((long long)row.isps_eq4),
                   format_fixed(row.mean_hypergiants_per_hosting_isp, 2)});
  }
  out += table.render();
  return out;
}

// ------------------------------------------------------- Section 3.3 ------

Section33Study section33_study(const Pipeline& pipeline) {
  Section33Study study;
  const Internet& net = pipeline.internet();
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);

  // Interceptable traffic per facility, per country: for each ISP and each
  // hypergiant it hosts, the deployment's serveable traffic (users x
  // serveable fraction) attributes to its facilities pro rata by servers.
  struct CountryAccumulator {
    double total_traffic = 0.0;   // users (proxy for total traffic)
    double offnet_traffic = 0.0;  // user-weighted offnet-serveable share
    std::map<FacilityIndex, double> per_facility;
  };
  std::vector<CountryAccumulator> accumulators(all_countries().size());

  for (const AsIndex isp : net.access_isps()) {
    const As& as = net.ases[isp];
    accumulators[as.country].total_traffic += as.users;
  }
  for (const AsIndex isp : registry.hosting_isps()) {
    const As& as = net.ases[isp];
    auto& acc = accumulators[as.country];
    for (const Hypergiant hg : registry.hypergiants_at(isp)) {
      const Deployment* deployment = registry.find_deployment(isp, hg);
      const double traffic =
          as.users * offnet_serveable_traffic_fraction(hg);
      acc.offnet_traffic += traffic;
      // Pro-rata by server count per facility.
      std::map<FacilityIndex, std::size_t> counts;
      for (const std::size_t si : deployment->server_indices) {
        ++counts[registry.servers()[si].facility];
      }
      for (const auto& [facility, count] : counts) {
        acc.per_facility[facility] +=
            traffic * static_cast<double>(count) /
            static_cast<double>(deployment->server_indices.size());
      }
    }
  }

  std::vector<double> halves;
  for (CountryIndex ci = 0; ci < all_countries().size(); ++ci) {
    const auto& acc = accumulators[ci];
    if (acc.total_traffic <= 0.0 || acc.per_facility.empty()) continue;
    CountryChokepoints row;
    row.code = std::string(all_countries()[ci].code);
    row.name = std::string(all_countries()[ci].name);
    row.users_m = acc.total_traffic / 1e6;
    row.offnet_served_traffic_share = acc.offnet_traffic / acc.total_traffic;
    row.facilities_total = static_cast<int>(acc.per_facility.size());

    std::vector<double> shares;
    shares.reserve(acc.per_facility.size());
    for (const auto& [facility, traffic] : acc.per_facility) {
      (void)facility;
      shares.push_back(traffic / acc.offnet_traffic);
    }
    std::sort(shares.begin(), shares.end(), std::greater<>());
    row.top_facility_share = shares.front();
    double cumulative = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      cumulative += shares[i];
      if (row.facilities_for_half == 0 && cumulative >= 0.5) {
        row.facilities_for_half = static_cast<int>(i + 1);
      }
      if (row.facilities_for_ninety == 0 && cumulative >= 0.9) {
        row.facilities_for_ninety = static_cast<int>(i + 1);
        break;
      }
    }
    halves.push_back(row.facilities_for_half);
    study.countries.push_back(std::move(row));
  }
  std::sort(study.countries.begin(), study.countries.end(),
            [](const CountryChokepoints& a, const CountryChokepoints& b) {
              return a.users_m > b.users_m;
            });
  if (!halves.empty()) study.median_facilities_for_half = median(halves);
  return study;
}

std::string render(const Section33Study& study, std::size_t max_countries) {
  std::string out =
      "Section 3.3: choke points -- how few facilities intercept a country's\n"
      "offnet-served traffic\n\n";
  TextTable table({"Country", "users (M)", "offnet share", "top facility",
                   "facilities: 50%", "90%", "total"});
  std::size_t shown = 0;
  for (const CountryChokepoints& row : study.countries) {
    if (shown++ >= max_countries) break;
    table.add_row({row.code + " " + row.name, format_fixed(row.users_m, 1),
                   pct(row.offnet_served_traffic_share),
                   pct(row.top_facility_share),
                   std::to_string(row.facilities_for_half),
                   std::to_string(row.facilities_for_ninety),
                   std::to_string(row.facilities_total)});
  }
  out += table.render();
  out += "\nMedian country: half of all offnet-served traffic flows through " +
         format_fixed(study.median_facilities_for_half, 0) + " facilities\n";
  return out;
}

// ------------------------------------------------------- Section 4.1 ------

Section41Study section41_study(const Pipeline& pipeline,
                               std::span<const double> xis) {
  Section41Study study;
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  const DiscoveryReport& report =
      pipeline.discovery(Snapshot::k2023, Methodology::k2023);

  for (const Hypergiant hg : all_hypergiants()) {
    SingleSiteRow row;
    row.hg = hg;
    row.single_site_frac_lo = 1.0;
    row.single_site_frac_hi = 0.0;
    for (const double xi : xis) {
      std::size_t considered = 0;
      std::size_t single = 0;
      for (const auto& [isp, ips] : report.footprint(hg).by_isp) {
        (void)ips;
        const IspClustering* clustering = pipeline.clustering_of(xi, isp);
        if (clustering == nullptr || !clustering->usable) continue;
        const int sites = inferred_site_count(*clustering, registry, hg);
        if (sites == 0) continue;
        ++considered;
        if (sites == 1) ++single;
      }
      if (considered == 0) continue;
      const double frac = static_cast<double>(single) / considered;
      row.single_site_frac_lo = std::min(row.single_site_frac_lo, frac);
      row.single_site_frac_hi = std::max(row.single_site_frac_hi, frac);
    }
    if (row.single_site_frac_lo > row.single_site_frac_hi) {
      row.single_site_frac_lo = row.single_site_frac_hi = 0.0;
    }
    study.single_site.push_back(row);
  }

  study.covid = covid_surge(CovidSurgeInput{});
  study.diurnal = diurnal_study(DiurnalStudyConfig{});
  return study;
}

std::string render(const Section41Study& study) {
  std::string out = "Section 4.1: offnets run near capacity\n\n";
  TextTable sites({"Hypergiant", "single-site ISPs (range across xi)"});
  for (const SingleSiteRow& row : study.single_site) {
    sites.add_row({std::string(to_string(row.hg)),
                   pct(row.single_site_frac_lo) + " - " +
                       pct(row.single_site_frac_hi)});
  }
  out += sites.render();

  out += "\nLockdown surge model (paper: +58% demand -> offnets +20%, "
         "interdomain >2x):\n";
  out += "  offnet traffic:      " + format_fixed(study.covid.offnet_before, 3) +
         " -> " + format_fixed(study.covid.offnet_after, 3) + "  (" +
         (study.covid.offnet_increase_fraction() >= 0 ? "+" : "") +
         pct(study.covid.offnet_increase_fraction()) + ")\n";
  out += "  interdomain traffic: " +
         format_fixed(study.covid.interdomain_before, 3) + " -> " +
         format_fixed(study.covid.interdomain_after, 3) + "  (x" +
         format_fixed(study.covid.interdomain_multiplier(), 2) + ")\n";

  out += "\nDiurnal study (530 apartments): share of traffic from nearby "
         "(in-ISP offnet) servers by local hour\n";
  TextTable diurnal({"hour", "demand (Gbps)", "near", "far"});
  for (const DiurnalPoint& point : study.diurnal) {
    diurnal.add_row({format_fixed(point.local_hour, 0),
                     format_fixed(point.total_demand, 2),
                     pct(point.near_fraction), pct(point.far_fraction)});
  }
  out += diurnal.render();
  return out;
}

// ----------------------------------------------------- Section 4.2.1 ------

Section421Study section421_study(const Pipeline& pipeline, Hypergiant hg) {
  Section421Study study;
  study.hg = hg;
  const Internet& net = pipeline.internet();
  const AsIndex hg_as = net.as_by_asn(profile(hg).asn);

  // Shared pipeline study: the traceroute engine carries the fault plan's
  // BGP-flap knobs, and path-instability downgrades land in the "peering"
  // StageHealth.
  const auto& evidence = pipeline.peering_study(hg);

  // Offnet hosts of this hypergiant.
  const DiscoveryReport& report =
      pipeline.discovery(Snapshot::k2023, Methodology::k2023);
  std::size_t peers = 0;
  std::size_t possible = 0;
  std::size_t none = 0;
  std::size_t true_peers = 0;
  for (const auto& [isp, ips] : report.footprint(hg).by_isp) {
    (void)ips;
    ++study.offnet_isps;
    if (net.has_peering(isp, hg_as)) ++true_peers;
    const auto it = evidence.find(isp);
    if (it == evidence.end()) {
      ++none;
      continue;
    }
    switch (it->second.status) {
      case PeeringStatus::kPeer: ++peers; break;
      case PeeringStatus::kPossiblePeer: ++possible; break;
      case PeeringStatus::kNoEvidence: ++none; break;
    }
  }
  if (study.offnet_isps > 0) {
    const double denom = static_cast<double>(study.offnet_isps);
    study.peer_pct = 100.0 * peers / denom;
    study.possible_pct = 100.0 * possible / denom;
    study.no_evidence_pct = 100.0 * none / denom;
    study.true_peering_pct = 100.0 * true_peers / denom;
  }

  // All inferred peers (any probed AS), IXP involvement.
  std::size_t via_ixp = 0;
  std::size_t ixp_only = 0;
  for (const auto& [isp, result] : evidence) {
    (void)isp;
    if (result.status != PeeringStatus::kPeer) continue;
    ++study.total_peers;
    if (result.seen_via_ixp) ++via_ixp;
    if (result.seen_via_ixp && !result.seen_via_pni) ++ixp_only;
  }
  if (study.total_peers > 0) {
    study.via_ixp_pct = 100.0 * via_ixp / static_cast<double>(study.total_peers);
    study.ixp_only_pct = 100.0 * ixp_only / static_cast<double>(study.total_peers);
  }
  return study;
}

std::string render(const Section421Study& study) {
  std::string out = "Section 4.2.1: dedicated peering of " +
                    std::string(to_string(study.hg)) + " (traceroute study)\n\n";
  out += "Of " + with_commas((long long)study.offnet_isps) + " ISPs with " +
         std::string(to_string(study.hg)) + " offnets:\n";
  out += "  peering observed:    " + format_fixed(study.peer_pct, 1) + "%\n";
  out += "  possible peering:    " + format_fixed(study.possible_pct, 1) +
         "%   (only unresponsive hops in between)\n";
  out += "  no evidence:         " + format_fixed(study.no_evidence_pct, 1) +
         "%   (traffic must come via providers)\n";
  out += "  [ground truth peering: " + format_fixed(study.true_peering_pct, 1) +
         "%]\n\n";
  out += "Of " + with_commas((long long)study.total_peers) +
         " inferred peers overall: " + format_fixed(study.via_ixp_pct, 1) +
         "% peer via an IXP in >=1 traceroute; " +
         format_fixed(study.ixp_only_pct, 1) + "% only via IXPs\n";
  return out;
}

// ----------------------------------------------------- Section 4.2.2 ------

Section422Study section422_study(const Pipeline& pipeline) {
  Section422Study study;
  for (const Hypergiant hg : all_hypergiants()) {
    study.per_hg.push_back(pni_utilization(
        pipeline.internet(), pipeline.registry(Snapshot::k2023),
        pipeline.demand(), pipeline.capacity(), hg));
  }
  return study;
}

std::string render(const Section422Study& study) {
  std::string out =
      "Section 4.2.2: dedicated peering often lacks sufficient capacity\n"
      "(peak interdomain demand vs provisioned PNI capacity)\n";
  TextTable table({"Hypergiant", "ISPs w/ PNI", "PNIs exceeded", "mean exceedance",
                   "demand >= 2x cap"});
  for (const PniUtilizationStats& stats : study.per_hg) {
    table.add_row({std::string(to_string(stats.hg)),
                   with_commas((long long)stats.isps_with_pni),
                   pct(stats.fraction_exceeded),
                   pct(stats.mean_peak_exceedance),
                   pct(stats.fraction_demand_2x)});
  }
  out += table.render();
  out += "(paper reference points: Google peak demand exceeded capacity by >=13%\n"
         " on average; 10% of Meta PNIs saw demand at 2x capacity)\n";
  return out;
}

// ------------------------------------------------------- Section 4.3 ------

Section43Study section43_study(const Pipeline& pipeline, std::size_t max_isps) {
  Section43Study study;
  const auto hosting = pipeline.hosting_isps_2023();
  const std::size_t stride = std::max<std::size_t>(1, hosting.size() / max_isps);

  double single_sum = 0.0;
  std::size_t single_count = 0;
  double multi_sum = 0.0;
  std::size_t multi_count = 0;
  std::size_t congested = 0;
  double shift_sum = 0.0;

  for (std::size_t i = 0; i < hosting.size(); i += stride) {
    const AsIndex isp = hosting[i];
    const CascadeOutcome outcome =
        cascade_study(pipeline.internet(), pipeline.registry(Snapshot::k2023),
                      pipeline.demand(), pipeline.capacity(), isp);
    if (outcome.failed_facility == kInvalidIndex) continue;
    ++study.isps_studied;

    const double collateral = outcome.collateral_degradation();
    if (outcome.hypergiants_in_facility >= 2) {
      multi_sum += collateral;
      ++multi_count;
    } else {
      single_sum += collateral;
      ++single_count;
    }

    const bool baseline_congested =
        outcome.baseline.ixp_drop_fraction() > 0.0 ||
        outcome.baseline.transit_drop_fraction() > 0.0;
    const bool failure_congested =
        outcome.failure.ixp_drop_fraction() > 0.0 ||
        outcome.failure.transit_drop_fraction() > 0.0;
    if (failure_congested && !baseline_congested) ++congested;

    double shift = 0.0;
    for (const Hypergiant hg : all_hypergiants()) {
      shift += outcome.failure.flow(hg).interdomain() -
               outcome.baseline.flow(hg).interdomain();
    }
    shift_sum += shift;
  }

  if (single_count > 0) study.mean_collateral_single_hg = single_sum / single_count;
  if (multi_count > 0) study.mean_collateral_multi_hg = multi_sum / multi_count;
  if (study.isps_studied > 0) {
    study.frac_shared_congestion =
        static_cast<double>(congested) / study.isps_studied;
    study.mean_interdomain_shift_gbps = shift_sum / study.isps_studied;
  }
  return study;
}

// --------------------------------------------------------- Section 6 ------

Section6Study section6_study(const Pipeline& pipeline, std::size_t max_isps) {
  Section6Study study;
  const auto hosting = pipeline.hosting_isps_2023();
  const std::size_t stride = std::max<std::size_t>(1, hosting.size() / max_isps);
  const OffnetRegistry& registry = pipeline.registry(Snapshot::k2023);
  const SpilloverSimulator simulator(pipeline.internet(), registry,
                                     pipeline.demand(), pipeline.capacity());

  double collateral_be = 0.0;
  double collateral_iso = 0.0;
  double degraded_be = 0.0;
  double degraded_iso = 0.0;

  for (std::size_t i = 0; i < hosting.size(); i += stride) {
    const AsIndex isp = hosting[i];
    // Fail the facility hosting the most hypergiants at local peak.
    FacilityIndex worst = kInvalidIndex;
    std::size_t worst_count = 0;
    for (const auto& [facility, hgs] : registry.facility_map(isp)) {
      if (hgs.size() > worst_count) {
        worst_count = hgs.size();
        worst = facility;
      }
    }
    if (worst == kInvalidIndex) continue;
    ++study.isps_studied;

    SpilloverScenario scenario;
    scenario.utc_hour = simulator.local_peak_utc_hour(isp);
    scenario.failed_facilities.insert(worst);

    scenario.policy = SharedLinkPolicy::kBestEffort;
    const SpilloverResult best_effort = simulator.simulate(isp, scenario);
    scenario.policy = SharedLinkPolicy::kIsolation;
    const SpilloverResult isolation = simulator.simulate(isp, scenario);

    collateral_be += best_effort.other_traffic_degraded_fraction();
    collateral_iso += isolation.other_traffic_degraded_fraction();
    for (const Hypergiant hg : all_hypergiants()) {
      degraded_be += best_effort.flow(hg).degraded;
      degraded_iso += isolation.flow(hg).degraded;
    }
  }
  if (study.isps_studied > 0) {
    const double n = static_cast<double>(study.isps_studied);
    study.collateral_best_effort = collateral_be / n;
    study.collateral_isolation = collateral_iso / n;
    study.hg_degraded_best_effort_gbps = degraded_be / n;
    study.hg_degraded_isolation_gbps = degraded_iso / n;
  }
  return study;
}

std::string render(const Section6Study& study) {
  std::string out =
      "Section 6: shared-link isolation as a mitigation (what-if)\n"
      "(busiest-facility failure at local peak, with and without reserving\n"
      " capacity for non-hypergiant traffic on IXP/transit links)\n\n";
  TextTable table({"policy", "collateral to other traffic",
                   "hypergiant traffic degraded"});
  table.add_row({"best effort (today)", pct(study.collateral_best_effort, 2),
                 format_fixed(study.hg_degraded_best_effort_gbps, 1) + " Gbps"});
  table.add_row({"isolation", pct(study.collateral_isolation, 2),
                 format_fixed(study.hg_degraded_isolation_gbps, 1) + " Gbps"});
  out += table.render();
  out += "\nISPs studied: " + with_commas((long long)study.isps_studied) + "\n";
  out += "(isolation protects unrelated traffic but concentrates the pain on\n"
         " the spilling hypergiants -- the Section 6 trade-off)\n";
  return out;
}

std::string render(const Section43Study& study) {
  std::string out =
      "Section 4.3: spillover to shared routes causes collateral damage\n"
      "(fail each ISP's busiest offnet facility at local evening peak)\n\n";
  out += "ISPs studied: " + with_commas((long long)study.isps_studied) + "\n";
  out += "newly congested shared links (IXP/transit): " +
         pct(study.frac_shared_congestion) + " of ISPs\n";
  out += "mean extra interdomain traffic: " +
         format_fixed(study.mean_interdomain_shift_gbps, 1) + " Gbps per ISP\n";
  out += "mean collateral degradation of other traffic:\n";
  out += "  facility hosted 1 hypergiant:   " +
         pct(study.mean_collateral_single_hg, 2) + "\n";
  out += "  facility hosted >=2 hypergiants: " +
         pct(study.mean_collateral_multi_hg, 2) + "\n";
  return out;
}

}  // namespace repro
