#include "core/pipeline.h"

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace repro {

namespace {

/// Cache key for a xi value (xi is a config constant like 0.1/0.9, so a
/// fixed-point key is exact).
std::uint64_t xi_key(double xi) {
  require(xi > 0.0 && xi < 1.0, "Pipeline: xi outside (0, 1)");
  return static_cast<std::uint64_t>(std::llround(xi * 1e6));
}

std::string hg_counter_name(std::string_view prefix, Hypergiant hg) {
  return std::string(prefix) + "." + std::string(to_string(hg));
}

}  // namespace

Pipeline::Pipeline(Scenario scenario) : scenario_(std::move(scenario)) {
  obs::ScopedSpan span("pipeline.generate_internet");
  InternetGenerator generator(scenario_.topology);
  internet_ = generator.generate();
  obs::metrics().gauge("topology.metros").set(
      static_cast<double>(internet_.metros.size()));
  obs::metrics().gauge("topology.facilities").set(
      static_cast<double>(internet_.facilities.size()));
  obs::metrics().gauge("topology.ases").set(
      static_cast<double>(internet_.ases.size()));
  obs::metrics().gauge("topology.links").set(
      static_cast<double>(internet_.links.size()));
}

const OffnetRegistry& Pipeline::registry(Snapshot snapshot) const {
  const auto it = registries_.find(snapshot);
  if (it != registries_.end()) return it->second;
  obs::ScopedSpan span("pipeline.deploy_registry");
  const DeploymentPolicy policy(internet_, scenario_.deployment);
  const OffnetRegistry& reg =
      registries_.emplace(snapshot, policy.deploy(snapshot)).first->second;
  obs::metrics().counter("deploy.offnet_servers").add(reg.servers().size());
  return reg;
}

const DiscoveryReport& Pipeline::discovery(Snapshot snapshot,
                                           Methodology methodology) const {
  const auto key = std::make_pair(snapshot, methodology);
  const auto it = reports_.find(key);
  if (it != reports_.end()) return it->second;

  obs::ScopedSpan span("pipeline.discovery");
  const CertStore population = build_tls_population(
      internet_, registry(snapshot), snapshot, scenario_.population);
  const Scanner scanner(scenario_.scanner);
  const auto records = scanner.scan(population);
  const OffnetClassifier classifier(internet_, methodology);
  const DiscoveryReport& report =
      reports_.emplace(key, classifier.classify(records)).first->second;

  for (const auto& footprint : report.footprints) {
    obs::metrics()
        .counter(hg_counter_name("discovery.offnet_ips", footprint.hg))
        .add(footprint.ip_count());
  }
  obs::metrics().counter("discovery.offnet_ips_total")
      .add(report.total_offnet_ips());
  obs::metrics().gauge("discovery.hosting_isps").set(
      static_cast<double>(report.isps_hosting_at_least(1).size()));
  return report;
}

const VantagePointSet& Pipeline::vantage_points() const {
  if (!vps_) {
    obs::ScopedSpan span("pipeline.vantage_points");
    vps_ = std::make_unique<VantagePointSet>(internet_, scenario_.vantage_points,
                                             scenario_.vantage_seed);
    obs::metrics().gauge("mlab.vantage_points").set(
        static_cast<double>(vps_->size()));
  }
  return *vps_;
}

const PingMesh& Pipeline::ping_mesh() const {
  if (!mesh_) {
    obs::ScopedSpan span("pipeline.ping_mesh");
    mesh_ = std::make_unique<PingMesh>(internet_, vantage_points(),
                                       scenario_.ping);
  }
  return *mesh_;
}

std::vector<AsIndex> Pipeline::hosting_isps_2023() const {
  return discovery(Snapshot::k2023, Methodology::k2023).isps_hosting_at_least(1);
}

const std::vector<IspClustering>& Pipeline::clusterings(double xi) const {
  const std::uint64_t key = xi_key(xi);
  const auto it = clusterings_.find(key);
  if (it != clusterings_.end()) return it->second;

  obs::ScopedSpan span("pipeline.clustering");

  // The ordering phase dominates and is xi-independent, so compute the
  // paper's two standard settings together; an unusual xi is computed alone.
  std::vector<double> xis{xi};
  if (xi == 0.1 || xi == 0.9) xis = {0.1, 0.9};

  ColocationConfig config;
  config.filter = scenario_.filter;
  const ColocationClusterer clusterer(registry(Snapshot::k2023), ping_mesh(),
                                      vantage_points(), config);
  std::vector<std::vector<IspClustering>> results(xis.size());
  std::map<AsIndex, std::size_t> index;
  for (const AsIndex isp : hosting_isps_2023()) {
    obs::ScopedTimer timer("cluster.isp_wall_ms");
    index.emplace(isp, results.front().size());
    auto per_xi = clusterer.cluster_isp_multi(isp, xis);
    for (std::size_t x = 0; x < xis.size(); ++x) {
      results[x].push_back(std::move(per_xi[x]));
    }
    obs::metrics().counter("cluster.isps_clustered").add(1);
  }
  for (std::size_t x = 0; x < xis.size(); ++x) {
    cluster_index_[xi_key(xis[x])] = index;
    clusterings_[xi_key(xis[x])] = std::move(results[x]);
  }
  return clusterings_.at(key);
}

const IspClustering* Pipeline::clustering_of(double xi, AsIndex isp) const {
  const auto& all = clusterings(xi);
  const auto& index = cluster_index_.at(xi_key(xi));
  const auto it = index.find(isp);
  if (it == index.end()) return nullptr;
  return &all[it->second];
}

const RoutingEngine& Pipeline::routing() const {
  if (!routing_) {
    obs::ScopedSpan span("pipeline.routing");
    routing_ = std::make_unique<RoutingEngine>(internet_);
  }
  return *routing_;
}

const DemandModel& Pipeline::demand() const {
  if (!demand_) {
    obs::ScopedSpan span("pipeline.demand");
    demand_ = std::make_unique<DemandModel>(internet_);
  }
  return *demand_;
}

const CapacityModel& Pipeline::capacity() const {
  if (!capacity_) {
    obs::ScopedSpan span("pipeline.capacity");
    capacity_ = std::make_unique<CapacityModel>(internet_, registry(Snapshot::k2023),
                                                demand(), scenario_.capacity);
  }
  return *capacity_;
}

}  // namespace repro
