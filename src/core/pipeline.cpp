#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <system_error>

#include "fault/injector.h"
#include "hypergiant/profile.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "store/artifact_store.h"
#include "store/matrix_file.h"
#include "store/serde.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace repro {

namespace {

/// Cache key for a xi value (xi is a config constant like 0.1/0.9, so a
/// fixed-point key is exact).
std::uint64_t xi_key(double xi) {
  require(xi > 0.0 && xi < 1.0, "Pipeline: xi outside (0, 1)");
  return static_cast<std::uint64_t>(std::llround(xi * 1e6));
}

std::string hg_counter_name(std::string_view prefix, Hypergiant hg) {
  return std::string(prefix) + "." + std::string(to_string(hg));
}

std::string count_reason(const char* what, std::uint64_t dropped,
                         std::uint64_t total) {
  return std::string(what) + ": " + std::to_string(dropped) + "/" +
         std::to_string(total);
}

/// Content-addressed key for one artifact: the world digest (measurement
/// config + fault plan) refined by the artifact type, its schema version
/// and per-artifact parameters (snapshot ordinal, ISP, xi key).
store::ArtifactKey make_key(const char* type, std::uint32_t schema,
                            std::uint64_t world,
                            std::initializer_list<std::uint64_t> params) {
  store::Fnv1a h;
  h.mix(world).mix(std::string_view(type)).mix(schema);
  for (const std::uint64_t param : params) h.mix(param);
  return store::ArtifactKey{type, schema, h.digest()};
}

/// Folds a corrupt-artifact event into a stage's health: the output is
/// recomputed and correct, but the run is flagged degraded so the operator
/// knows persistence failed it (docs/PERSISTENCE.md).
void note_store_corruption(fault::StageHealth& health, const std::string& detail) {
  health.status = std::max(health.status, fault::StageStatus::kDegraded);
  health.reasons.push_back("store: " + detail);
}

/// The xi batch clusterings() computes together: the paper's two standard
/// settings share one OPTICS ordering; an unusual xi is computed alone.
/// Shard workers and the merge derive the identical batch independently.
std::vector<double> xi_batch(double xi) {
  if (xi == 0.1 || xi == 0.9) return {0.1, 0.9};
  return {xi};
}

/// Counters that must not ride a shard artifact into the parent: store
/// traffic and pipeline cache bookkeeping are per-process facts, while the
/// domain counters (cluster.*, filters.*, ...) sum linearly over ISPs and
/// replay exactly (docs/SCALING.md).
bool shard_local_counter(const std::string& name) {
  return name.rfind("store.", 0) == 0 || name.rfind("pipeline.", 0) == 0;
}

}  // namespace

Pipeline::Pipeline(Scenario scenario)
    : Pipeline(std::move(scenario), fault::FaultPlan::none()) {}

Pipeline::Pipeline(Scenario scenario, fault::FaultPlan plan)
    : Pipeline(std::move(scenario), plan, store::ArtifactStore::from_env()) {}

Pipeline::Pipeline(Scenario scenario, fault::FaultPlan plan,
                   std::shared_ptr<store::ArtifactStore> artifacts)
    : scenario_(std::move(scenario)),
      plan_(plan),
      artifacts_(std::move(artifacts)) {
  // Ping-campaign, route and rDNS faults live in the measurement models
  // themselves, so fold them into the configs before any engine is built.
  fault::apply_ping_faults(scenario_.ping, plan_);
  fault::apply_route_faults(scenario_.traceroute, plan_);
  fault::apply_rdns_faults(scenario_.ptr, plan_);

  // The measurement-fault JSON covers every rate that can change artifact
  // bytes plus the fault seed, so two pipelines share artifacts exactly
  // when both the measurement config and the injected measurement
  // pathologies agree. Store chaos is deliberately outside the digest: it
  // garbles persisted bytes without changing what a clean compute produces,
  // which is exactly what lets a chaos run corrupt -- and then heal -- a
  // clean baseline's warm artifacts.
  world_digest_ = store::Fnv1a()
                      .mix(measurement_digest(scenario_))
                      .mix(plan_.measurement_json())
                      .digest();

  // Arm (or, at a zero rate, disarm) live store corruption before the first
  // load. Always called so a store shared across sweep runs never carries a
  // previous pipeline's chaos knobs.
  if (artifacts_ != nullptr) {
    store::StoreChaos chaos;
    chaos.seed = plan_.seed;
    chaos.corrupt_rate = plan_.store.corrupt_rate;
    chaos.truncate_fraction = plan_.store.truncate_fraction;
    artifacts_->set_chaos(chaos);
  }

  // Streamed matrices need a spill directory. Anchor it under a writable
  // store (spills then persist as a rebuildable warm cache next to the .bin
  // artifacts); otherwise use a private temp directory torn down with the
  // pipeline. If neither can be created, streaming quietly degrades to the
  // in-memory path -- the outputs are bit-identical either way.
  if (scenario_.stream_matrices) {
    namespace fs = std::filesystem;
    if (artifacts_ != nullptr && !artifacts_->config().read_only) {
      std::error_code ec;
      const std::string dir = artifacts_->config().root + "/stream";
      fs::create_directories(dir, ec);
      if (!ec) stream_dir_ = dir;
    }
    if (stream_dir_.empty()) {
      std::error_code ec;
      std::string tmpl =
          (fs::temp_directory_path(ec) / "repro-stream-XXXXXX").string();
      if (!ec && ::mkdtemp(tmpl.data()) != nullptr) {
        stream_dir_ = tmpl;
        owns_stream_dir_ = true;
      }
    }
  }

  obs::ScopedSpan span("pipeline.generate_internet");
  // Warm topology (ROADMAP: generation dominates a fully warm run): the
  // Internet artifact is keyed by the topology config alone, not the world
  // digest, so scenarios differing only in measurement settings or fault
  // plans share one persisted topology. Generation is deterministic in that
  // config, so no health record is embedded -- there is nothing degraded a
  // warm copy could replay.
  const store::ArtifactKey topo_key =
      make_key("internet", store::kInternetSchema,
               topology_digest(scenario_.topology), {});
  std::string corruption;
  bool warm = false;
  if (artifacts_ != nullptr) {
    store::LoadResult loaded = artifacts_->load(topo_key);
    if (loaded.hit()) {
      try {
        store::ByteReader reader(loaded.payload);
        internet_ = store::decode_internet(reader);
        warm = true;
        obs::metrics().counter("pipeline.topology_store_hit").add(1);
      } catch (const Error& error) {
        corruption = topo_key.filename() + ": " + error.what();
      }
    } else if (loaded.corrupt()) {
      corruption = loaded.detail;
    }
  }
  if (!warm) {
    InternetGenerator generator(scenario_.topology);
    internet_ = generator.generate();
    if (artifacts_ != nullptr) {
      store::ByteWriter writer;
      store::encode(writer, internet_);
      artifacts_->save(topo_key, writer.bytes());
    }
  }
  if (!corruption.empty()) {
    fault::StageHealth health;
    note_store_corruption(health, corruption);
    record_health("topology", health);
  }
  obs::metrics().gauge("topology.metros").set(
      static_cast<double>(internet_.metros.size()));
  obs::metrics().gauge("topology.facilities").set(
      static_cast<double>(internet_.facilities.size()));
  obs::metrics().gauge("topology.ases").set(
      static_cast<double>(internet_.ases.size()));
  obs::metrics().gauge("topology.links").set(
      static_cast<double>(internet_.links.size()));
}

Pipeline::~Pipeline() {
  if (owns_stream_dir_ && !stream_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(stream_dir_, ec);
  }
}

void Pipeline::record_health(const std::string& stage,
                             fault::StageHealth health) const {
  if (health.status == fault::StageStatus::kFailed) {
    obs::metrics().counter("fault.stage_failures").add(1);
  }
  // Guarded: a stage running on pool workers may record health while
  // another stage (or a concurrent pipeline user) does the same.
  std::lock_guard<std::mutex> lock(health_mutex_);
  const auto [it, inserted] = health_.try_emplace(stage, health);
  if (!inserted) it->second.merge(health);
  obs::set_report_section(
      "fault", fault::fault_section_json(plan_.to_json(), health_));
}

const OffnetRegistry& Pipeline::registry(Snapshot snapshot) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const auto it = registries_.find(snapshot);
  if (it != registries_.end()) return it->second;
  obs::ScopedSpan span("pipeline.deploy_registry");
  const DeploymentPolicy policy(internet_, scenario_.deployment);
  const OffnetRegistry& reg =
      registries_.emplace(snapshot, policy.deploy(snapshot)).first->second;
  obs::metrics().counter("deploy.offnet_servers").add(reg.servers().size());
  return reg;
}

const CertStore& Pipeline::population(Snapshot snapshot) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const auto it = populations_.find(snapshot);
  if (it != populations_.end()) {
    // In-process memoization, distinct from a store warm hit (store.hit).
    obs::metrics().counter("pipeline.population_cache_hit").add(1);
    return it->second;
  }

  obs::ScopedSpan span("pipeline.tls_population");
  const store::ArtifactKey key =
      make_key("population", store::kPopulationSchema, world_digest_,
               {static_cast<std::uint64_t>(snapshot)});
  std::string corruption;
  if (artifacts_ != nullptr) {
    store::LoadResult loaded = artifacts_->load(key);
    if (loaded.hit()) {
      try {
        store::ByteReader reader(loaded.payload);
        fault::StageHealth health = store::decode_stage_health(reader);
        CertStore population = store::decode_population(reader);
        record_health("tls_population", std::move(health));
        return populations_.emplace(snapshot, std::move(population))
            .first->second;
      } catch (const Error& error) {
        corruption = key.filename() + ": " + error.what();
      }
    } else if (loaded.corrupt()) {
      corruption = loaded.detail;
    }
  }

  fault::StageHealth health;
  CertStore store;
  try {
    store = build_tls_population(internet_, registry(snapshot), snapshot,
                                 scenario_.population);
    health.total = store.size();
    if (plan_.active()) {
      fault::CertFaultOutcome outcome;
      fault::inject_cert_faults(store, plan_, &outcome);
      obs::metrics().counter("fault.cert_churned").add(outcome.churned);
      obs::metrics().counter("fault.cert_garbled").add(outcome.garbled);
      health.dropped = outcome.garbled;
      if (outcome.churned + outcome.garbled > 0) {
        health.status = fault::StageStatus::kDegraded;
        health.reasons.push_back(count_reason("certs garbled", outcome.garbled,
                                              health.total));
        health.reasons.push_back(count_reason("certs churned", outcome.churned,
                                              health.total));
      }
    }
  } catch (const Error& error) {
    health.status = fault::StageStatus::kFailed;
    health.reasons.push_back(std::string("tls_population: ") + error.what());
    store = CertStore();
  }
  // Publish before folding in any corruption note: the replacement artifact
  // must carry the health a clean cold run earns, not this run's stigma.
  if (artifacts_ != nullptr && health.status != fault::StageStatus::kFailed) {
    store::ByteWriter writer;
    store::encode(writer, health);
    store::encode(writer, store);
    artifacts_->save(key, writer.bytes());
  }
  if (!corruption.empty()) note_store_corruption(health, corruption);
  record_health("tls_population", health);
  return populations_.emplace(snapshot, std::move(store)).first->second;
}

const std::vector<ScanRecord>& Pipeline::scan_records(Snapshot snapshot) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const auto it = scans_.find(snapshot);
  if (it != scans_.end()) {
    // In-process memoization, distinct from a store warm hit (store.hit).
    obs::metrics().counter("pipeline.scan_cache_hit").add(1);
    return it->second;
  }

  obs::ScopedSpan span("pipeline.scan");
  const store::ArtifactKey key =
      make_key("scan", store::kScanRecordsSchema, world_digest_,
               {static_cast<std::uint64_t>(snapshot)});
  std::string corruption;
  if (artifacts_ != nullptr) {
    store::LoadResult loaded = artifacts_->load(key);
    if (loaded.hit()) {
      try {
        store::ByteReader reader(loaded.payload);
        fault::StageHealth health = store::decode_stage_health(reader);
        std::vector<ScanRecord> records = store::decode_scan_records(reader);
        record_health("scan", std::move(health));
        return scans_.emplace(snapshot, std::move(records)).first->second;
      } catch (const Error& error) {
        corruption = key.filename() + ": " + error.what();
      }
    } else if (loaded.corrupt()) {
      corruption = loaded.detail;
    }
  }

  fault::StageHealth health;
  std::vector<ScanRecord> records;
  try {
    const CertStore& store = population(snapshot);
    health.total = store.size();
    const Scanner scanner(scenario_.scanner);
    records = scanner.scan(store);
    if (plan_.active()) {
      fault::ScanFaultOutcome outcome;
      records = fault::inject_scan_faults(std::move(records), plan_, &outcome);
      obs::metrics().counter("fault.scan_truncated").add(outcome.truncated);
      obs::metrics().counter("fault.scan_burst_missed").add(outcome.burst_missed);
      health.dropped = outcome.dropped();
      if (outcome.dropped() > 0) {
        health.status = fault::StageStatus::kDegraded;
        health.reasons.push_back(count_reason(
            "records lost to shard truncation", outcome.truncated, health.total));
        health.reasons.push_back(count_reason(
            "records lost to miss bursts", outcome.burst_missed, health.total));
      }
    }
  } catch (const Error& error) {
    health.status = fault::StageStatus::kFailed;
    health.reasons.push_back(std::string("scan: ") + error.what());
    records.clear();
  }
  // Publish before folding in any corruption note (see population()).
  if (artifacts_ != nullptr && health.status != fault::StageStatus::kFailed) {
    store::ByteWriter writer;
    store::encode(writer, health);
    store::encode(writer, records);
    artifacts_->save(key, writer.bytes());
  }
  if (!corruption.empty()) note_store_corruption(health, corruption);
  record_health("scan", health);
  return scans_.emplace(snapshot, std::move(records)).first->second;
}

const DiscoveryReport& Pipeline::discovery(Snapshot snapshot,
                                           Methodology methodology) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const auto key = std::make_pair(snapshot, methodology);
  const auto it = reports_.find(key);
  if (it != reports_.end()) return it->second;

  obs::ScopedSpan span("pipeline.discovery");
  fault::StageHealth health;
  DiscoveryReport result;
  try {
    const std::vector<ScanRecord>& records = scan_records(snapshot);
    health.total = records.size();
    const OffnetClassifier classifier(internet_, methodology);
    result = classifier.classify(records);
    if (result.total_offnet_ips() == 0 &&
        registry(snapshot).server_count() > 0) {
      // Quality gate: the ground truth deployed offnets but discovery came
      // back empty -- downstream studies would silently report nothing.
      health.status = fault::StageStatus::kFailed;
      health.reasons.push_back("no offnet IPs discovered");
    }
  } catch (const Error& error) {
    health.status = fault::StageStatus::kFailed;
    health.reasons.push_back(std::string("discovery: ") + error.what());
    result = DiscoveryReport();
    result.methodology = methodology;
  }
  const DiscoveryReport& report =
      reports_.emplace(key, std::move(result)).first->second;

  for (const auto& footprint : report.footprints) {
    obs::metrics()
        .counter(hg_counter_name("discovery.offnet_ips", footprint.hg))
        .add(footprint.ip_count());
  }
  obs::metrics().counter("discovery.offnet_ips_total")
      .add(report.total_offnet_ips());
  obs::metrics().gauge("discovery.hosting_isps").set(
      static_cast<double>(report.isps_hosting_at_least(1).size()));
  record_health("discovery", health);
  return report;
}

const VantagePointSet& Pipeline::vantage_points() const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  if (!vps_) {
    obs::ScopedSpan span("pipeline.vantage_points");
    vps_ = std::make_unique<VantagePointSet>(internet_, scenario_.vantage_points,
                                             scenario_.vantage_seed);
    obs::metrics().gauge("mlab.vantage_points").set(
        static_cast<double>(vps_->size()));
  }
  return *vps_;
}

const PingMesh& Pipeline::ping_mesh() const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  if (!mesh_) {
    obs::ScopedSpan span("pipeline.ping_mesh");
    mesh_ = std::make_unique<PingMesh>(internet_, vantage_points(),
                                       scenario_.ping);

    fault::StageHealth health;
    health.total = vantage_points().size();
    for (std::size_t vp = 0; vp < vantage_points().size(); ++vp) {
      if (mesh_->vp_dark(vp)) ++health.dropped;
    }
    obs::metrics().counter("fault.vps_dark").add(health.dropped);
    if (health.dropped > 0) {
      health.status = fault::StageStatus::kDegraded;
      health.reasons.push_back(
          count_reason("vantage points dark", health.dropped, health.total));
    }
    if (scenario_.ping.icmp_storm_isp_rate > 0.0) {
      std::uint64_t storming = 0;
      for (const AsIndex isp : registry(Snapshot::k2023).hosting_isps()) {
        if (mesh_->isp_storm_limited(isp)) ++storming;
      }
      if (storming > 0) {
        health.status = std::max(health.status, fault::StageStatus::kDegraded);
        health.reasons.push_back(
            std::to_string(storming) +
            " hosting ISPs under ICMP rate-limit storms");
      }
    }
    record_health("ping_mesh", health);
  }
  return *mesh_;
}

std::vector<AsIndex> Pipeline::hosting_isps_2023() const {
  return discovery(Snapshot::k2023, Methodology::k2023).isps_hosting_at_least(1);
}

const std::vector<IspClustering>& Pipeline::clusterings(double xi) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const std::uint64_t key = xi_key(xi);
  const auto it = clusterings_.find(key);
  if (it != clusterings_.end()) return it->second;

  obs::ScopedSpan span("pipeline.clustering");

  const std::vector<double> xis = xi_batch(xi);

  // Warm path: the whole xi batch must hit, else recompute everything (one
  // OPTICS ordering serves every xi, so partial reuse saves nothing).
  std::string corruption;
  if (artifacts_ != nullptr) {
    std::vector<store::LoadResult> loads;
    bool all_hit = true;
    for (const double x : xis) {
      loads.push_back(artifacts_->load(
          make_key("clustering", store::kClusteringSchema, world_digest_,
                   {xi_key(x)})));
      if (!loads.back().hit()) all_hit = false;
      if (loads.back().corrupt() && corruption.empty()) {
        corruption = loads.back().detail;
      }
    }
    if (all_hit) {
      try {
        fault::StageHealth health;
        std::vector<std::vector<IspClustering>> decoded;
        for (std::size_t x = 0; x < xis.size(); ++x) {
          store::ByteReader reader(loads[x].payload);
          // Every xi artifact of the batch embeds the same stage health;
          // record it once.
          fault::StageHealth h = store::decode_stage_health(reader);
          if (x == 0) health = std::move(h);
          decoded.push_back(store::decode_clusterings(reader));
        }
        record_health("clustering", std::move(health));
        for (std::size_t x = 0; x < xis.size(); ++x) {
          // The merge below stores clusterings in hosting-ISP order, so the
          // ISP -> position index rebuilds exactly from the decoded order.
          std::map<AsIndex, std::size_t> index;
          for (std::size_t i = 0; i < decoded[x].size(); ++i) {
            index.emplace(decoded[x][i].isp, i);
          }
          cluster_index_[xi_key(xis[x])] = std::move(index);
          clusterings_[xi_key(xis[x])] = std::move(decoded[x]);
        }
        return clusterings_.at(key);
      } catch (const Error& error) {
        if (corruption.empty()) {
          corruption = std::string("clustering artifact: ") + error.what();
        }
      }
    }
  }

  const std::vector<AsIndex> isps = hosting_isps_2023();
  ClusterFanout fanout = cluster_isps(isps, xis);
  return merge_isp_outcomes(isps, xis, std::move(fanout), corruption, key);
}

LatencyMatrix Pipeline::fetch_isp_matrix(
    const OffnetRegistry& reg, const PingMesh& mesh, AsIndex isp,
    std::atomic<std::uint64_t>& corrupt) const {
  if (artifacts_ == nullptr) return mesh.measure_isp(reg, isp);
  const store::ArtifactKey mkey =
      make_key("matrix", store::kLatencyMatrixSchema, world_digest_,
               {static_cast<std::uint64_t>(isp)});
  // Single-flight fetch: when several workers (or several pipelines over
  // one shared store) race for the same matrix -- including one freshly
  // garbled by store chaos -- exactly one computes while the rest park
  // and re-load the healed bytes.
  const store::FetchResult fetched = artifacts_->load_or_compute(
      mkey, [&]() {
        LatencyMatrix computed = mesh.measure_isp(reg, isp);
        store::ByteWriter writer;
        store::encode(writer, computed);
        return writer.bytes();
      });
  if (fetched.recovered_corrupt) {
    corrupt.fetch_add(1, std::memory_order_relaxed);
  }
  try {
    store::ByteReader reader(fetched.load.payload);
    return store::decode_latency_matrix(reader);
  } catch (const Error&) {
    // Payload decode failed even after the fetch (e.g. a read-only store
    // serving chaos-garbled bytes it cannot heal): fall back to a direct
    // compute.
    corrupt.fetch_add(1, std::memory_order_relaxed);
    return mesh.measure_isp(reg, isp);
  }
}

LatencyMatrix Pipeline::isp_latency_matrix(AsIndex isp) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  obs::ScopedSpan span("pipeline.isp_matrix");
  const OffnetRegistry& reg = registry(Snapshot::k2023);
  const PingMesh& mesh = ping_mesh();
  std::atomic<std::uint64_t> corrupt{0};
  LatencyMatrix matrix = fetch_isp_matrix(reg, mesh, isp, corrupt);
  if (corrupt.load() > 0) {
    // Same degraded-run note the fan-out merge would make: the matrix is
    // recomputed and correct, but persistence failed this run.
    fault::StageHealth health;
    note_store_corruption(health, std::to_string(corrupt.load()) +
                                      " corrupt latency matrices recomputed");
    record_health("clustering", health);
  }
  return matrix;
}

std::string Pipeline::stream_spill_path(AsIndex isp) const {
  // Keyed exactly like the "matrix" artifact family, with the .mmx
  // extension marking the aligned spill layout (store/matrix_file.h).
  std::string name = make_key("matrix", store::kLatencyMatrixSchema,
                              world_digest_,
                              {static_cast<std::uint64_t>(isp)})
                         .filename();
  name.replace(name.size() - 4, 4, ".mmx");
  return stream_dir_ + "/" + name;
}

Pipeline::ClusterFanout Pipeline::cluster_isps(
    const std::vector<AsIndex>& isps, std::span<const double> xis) const {
  ColocationConfig config;
  config.filter = scenario_.filter;
  const OffnetRegistry& reg = registry(Snapshot::k2023);
  const PingMesh& mesh = ping_mesh();
  const ColocationClusterer clusterer(reg, mesh, vantage_points(), config);

  // Fan the per-ISP clustering across the thread pool. Each ISP's outcome
  // lands in its own preallocated slot, and the health/result merge walks
  // the slots in ISP order on one thread, so results, health records and
  // counters are bit-identical to the serial loop for any thread count.
  ClusterFanout fanout;
  fanout.outcomes.resize(isps.size());
  std::vector<IspOutcome>& outcomes = fanout.outcomes;
  const std::size_t threads =
      std::min(default_thread_count(), std::max<std::size_t>(isps.size(), 1));
  obs::metrics().gauge("cluster.threads").set(static_cast<double>(threads));
  obs::metrics().gauge("cluster.tasks").set(static_cast<double>(isps.size()));
  const std::size_t block =
      std::max<std::size_t>(1, isps.size() / (threads * 4));
  const bool streaming = !stream_dir_.empty();
  // Per-ISP latency matrices are the expensive xi-independent half of the
  // clustering stage, so workers consult/publish them individually; the
  // store serializes internally, keeping the fan-out data-race free (the
  // TSan tier of scripts/check.sh covers this path).
  std::atomic<std::uint64_t> corrupt_matrices{0};

  // Fetches one ISP's matrix: through the attached store when present
  // (single-flight, self-healing), else by measuring directly. Shared with
  // the public isp_latency_matrix() accessor; lock-free so pool workers can
  // call it while the fan-out caller holds the stage mutex.
  const auto fetch_matrix = [&](AsIndex isp) -> LatencyMatrix {
    return fetch_isp_matrix(reg, mesh, isp, corrupt_matrices);
  };

  // Streamed path: the matrix lives in a .mmx spill and clustering reads
  // it through an mmap view, so the full matrix never sits on the heap. A
  // malformed spill is treated like a corrupt artifact (delete, recompute,
  // republish); a failed spill write degrades to the in-memory path --
  // bit-identical either way (docs/SCALING.md).
  const auto cluster_streamed = [&](AsIndex isp) -> std::vector<IspClustering> {
    const std::string path = stream_spill_path(isp);
    std::optional<store::MappedLatencyMatrix> mapped;
    try {
      mapped = store::MappedLatencyMatrix::open_if_exists(path);
    } catch (const store::SerdeError&) {
      std::error_code ec;
      std::filesystem::remove(path, ec);
      corrupt_matrices.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error&) {
      // Unmappable (permissions, exotic filesystem): leave the file alone
      // and fall through to a fresh fetch + in-memory fallback below.
    }
    if (!mapped.has_value()) {
      LatencyMatrix computed = fetch_matrix(isp);
      try {
        store::write_matrix_file(path, computed);
        mapped = store::MappedLatencyMatrix::open(path);
      } catch (const Error&) {
        return clusterer.cluster_isp_multi(isp, xis, std::move(computed));
      }
    }
    return clusterer.cluster_isp_multi(isp, xis, *mapped,
                                       scenario_.stream_block_rows);
  };

  parallel_for_blocks(
      isps.size(), block,
      [&](std::size_t begin, std::size_t end) {
        // Shard-level aggregation: each worker's contiguous run of ISPs is
        // one sample of cluster.shard_ms, next to the per-ISP wall times.
        // The spans ride the task-context propagation in the pool, so they
        // render under pipeline.clustering in the exported trace instead of
        // as orphan roots.
        obs::ScopedSpan shard_span("cluster.shard");
        obs::ScopedTimer shard_timer("cluster.shard_ms");
        for (std::size_t i = begin; i < end; ++i) {
          obs::ScopedSpan isp_span("cluster.isp");
          obs::ScopedTimer timer("cluster.isp_wall_ms");
          IspOutcome& out = outcomes[i];
          try {
            if (streaming) {
              out.per_xi = cluster_streamed(isps[i]);
            } else if (artifacts_ == nullptr) {
              out.per_xi = clusterer.cluster_isp_multi(isps[i], xis);
            } else {
              out.per_xi = clusterer.cluster_isp_multi(isps[i], xis,
                                                       fetch_matrix(isps[i]));
            }
          } catch (const Error& error) {
            // Quality gate: one pathological ISP matrix must not abort the
            // other few thousand -- keep an unusable placeholder, move on.
            out.failed = true;
            out.error = error.what();
            IspClustering placeholder;
            placeholder.isp = isps[i];
            out.per_xi.assign(xis.size(), placeholder);
          }
          obs::metrics().counter("cluster.isps_clustered").add(1);
        }
      },
      threads);
  fanout.corrupt_matrices = corrupt_matrices.load();
  return fanout;
}

const std::vector<IspClustering>& Pipeline::merge_isp_outcomes(
    const std::vector<AsIndex>& isps, std::span<const double> xis,
    ClusterFanout fanout, const std::string& corruption,
    std::uint64_t key) const {
  std::vector<IspOutcome>& outcomes = fanout.outcomes;
  require(outcomes.size() == isps.size(),
          "merge_isp_outcomes: outcome count mismatch");

  // Deterministic, ISP-ordered merge on the calling thread.
  fault::StageHealth health;
  std::uint64_t failed_isps = 0;
  std::vector<std::vector<IspClustering>> results(xis.size());
  std::map<AsIndex, std::size_t> index;
  for (std::size_t i = 0; i < isps.size(); ++i) {
    index.emplace(isps[i], results.front().size());
    ++health.total;
    IspOutcome& out = outcomes[i];
    if (out.failed) {
      ++failed_isps;
      if (health.reasons.empty() ||
          health.reasons.back().find("clustering error") == std::string::npos) {
        health.reasons.push_back(std::string("clustering error: ") + out.error);
      }
    }
    if (!out.per_xi.front().usable) ++health.dropped;
    for (std::size_t x = 0; x < xis.size(); ++x) {
      results[x].push_back(std::move(out.per_xi[x]));
    }
  }

  if (health.total > 0 && health.dropped == health.total) {
    health.status = fault::StageStatus::kFailed;
    health.reasons.push_back("no ISP passed the usable-sites filter");
  } else if (failed_isps > 0 || (plan_.active() && health.dropped > 0)) {
    health.status = fault::StageStatus::kDegraded;
    if (health.dropped > 0) {
      health.reasons.push_back(count_reason(
          "ISPs below the usable-sites filter", health.dropped, health.total));
    }
  }
  // Publish each xi's artifact before folding in corruption notes (the
  // recomputed outputs are correct; only this run is flagged degraded).
  if (artifacts_ != nullptr && health.status != fault::StageStatus::kFailed) {
    for (std::size_t x = 0; x < xis.size(); ++x) {
      store::ByteWriter writer;
      store::encode(writer, health);
      store::encode(writer, results[x]);
      artifacts_->save(make_key("clustering", store::kClusteringSchema,
                                world_digest_, {xi_key(xis[x])}),
                       writer.bytes());
    }
  }
  if (fanout.corrupt_matrices > 0) {
    note_store_corruption(health,
                          std::to_string(fanout.corrupt_matrices) +
                              " corrupt latency matrices recomputed");
  }
  if (!corruption.empty()) note_store_corruption(health, corruption);
  record_health("clustering", health);

  for (std::size_t x = 0; x < xis.size(); ++x) {
    cluster_index_[xi_key(xis[x])] = index;
    clusterings_[xi_key(xis[x])] = std::move(results[x]);
  }
  return clusterings_.at(key);
}

std::size_t Pipeline::shard_of(std::uint64_t measurement_digest, AsIndex isp,
                               std::size_t shard_count) noexcept {
  if (shard_count <= 1) return 0;
  return static_cast<std::size_t>(
      store::Fnv1a()
          .mix(measurement_digest)
          .mix(static_cast<std::uint64_t>(isp))
          .digest() %
      shard_count);
}

void Pipeline::compute_clustering_shard(std::size_t shard,
                                        std::size_t shard_count,
                                        double xi) const {
  require(artifacts_ != nullptr,
          "compute_clustering_shard: needs an artifact store (the shared "
          "medium between shard processes)");
  require(shard_count >= 1 && shard < shard_count,
          "compute_clustering_shard: shard outside [0, shard_count)");
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  obs::ScopedSpan span("pipeline.clustering_shard");

  const std::vector<double> xis = xi_batch(xi);
  const std::uint64_t partition_digest = measurement_digest(scenario_);

  // Force every upstream stage before bracketing the counter delta: the
  // fan-out below must be the only thing between the two snapshots, so the
  // delta replays cleanly in a parent that forced the same stages itself.
  const std::vector<AsIndex> all = hosting_isps_2023();
  registry(Snapshot::k2023);
  vantage_points();
  ping_mesh();

  std::vector<AsIndex> mine;
  for (const AsIndex isp : all) {
    if (shard_of(partition_digest, isp, shard_count) == shard) {
      mine.push_back(isp);
    }
  }

  std::map<std::string, std::uint64_t> before;
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    before[name] = value;
  }

  ClusterFanout fanout = cluster_isps(mine, xis);

  // Domain-counter delta of the fan-out (cluster.*, filters.*, ...); store
  // and pipeline bookkeeping stays per-process. Counters the fan-out merely
  // *registered* (zero adds, like filters.nonfinite_leaked on a clean run)
  // ride along with a zero delta: replaying them registers the same entry
  // in the parent, so the merged counter listing matches a single-process
  // run name-for-name, not just value-for-value.
  std::vector<std::pair<std::string, std::uint64_t>> deltas;
  for (const auto& [name, value] : obs::metrics().snapshot().counters) {
    if (shard_local_counter(name)) continue;
    const auto it = before.find(name);
    if (it == before.end()) {
      deltas.emplace_back(name, value);
    } else if (value > it->second) {
      deltas.emplace_back(name, value - it->second);
    }
  }

  store::ByteWriter writer;
  writer.u64(shard);
  writer.u64(shard_count);
  writer.u64(xis.size());
  for (const double x : xis) writer.u64(xi_key(x));
  writer.u64(fanout.corrupt_matrices);
  writer.u64(mine.size());
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const IspOutcome& out = fanout.outcomes[i];
    writer.u64(static_cast<std::uint64_t>(mine[i]));
    writer.u8(out.failed ? 1 : 0);
    writer.str(out.error);
    store::encode(writer, out.per_xi);
  }
  writer.u64(deltas.size());
  for (const auto& [name, value] : deltas) {
    writer.str(name);
    writer.u64(value);
  }
  artifacts_->save(make_key("clustershard", store::kClusterShardSchema,
                            world_digest_,
                            {shard, shard_count, xi_key(xi)}),
                   writer.bytes());
}

void Pipeline::merge_clustering_shards(std::size_t shard_count,
                                       double xi) const {
  require(artifacts_ != nullptr,
          "merge_clustering_shards: needs an artifact store");
  require(shard_count >= 1, "merge_clustering_shards: zero shards");
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  obs::ScopedSpan span("pipeline.clustering_merge");

  const std::vector<double> xis = xi_batch(xi);
  const std::uint64_t partition_digest = measurement_digest(scenario_);

  // The parent owns the stage health and counters of every non-clustering
  // stage, exactly like a single-process run: force them before merging.
  const std::vector<AsIndex> isps = hosting_isps_2023();
  registry(Snapshot::k2023);
  vantage_points();
  ping_mesh();

  // Each shard's slots into the global hosting-ISP order (the shard
  // artifact lists its ISPs in the same filtered sub-order).
  std::vector<std::vector<std::size_t>> shard_slots(shard_count);
  for (std::size_t i = 0; i < isps.size(); ++i) {
    shard_slots[shard_of(partition_digest, isps[i], shard_count)].push_back(i);
  }

  ClusterFanout merged;
  merged.outcomes.resize(isps.size());
  for (std::size_t s = 0; s < shard_count; ++s) {
    bool replayed = false;
    const store::LoadResult loaded =
        artifacts_->load(make_key("clustershard", store::kClusterShardSchema,
                                  world_digest_, {s, shard_count, xi_key(xi)}));
    if (loaded.hit()) {
      try {
        store::ByteReader reader(loaded.payload);
        const std::uint64_t got_shard = reader.u64();
        const std::uint64_t got_count = reader.u64();
        const std::uint64_t got_xis = reader.u64();
        bool consistent = got_shard == s && got_count == shard_count &&
                          got_xis == xis.size();
        for (std::uint64_t x = 0; x < got_xis; ++x) {
          const std::uint64_t got_key = reader.u64();
          consistent = consistent && x < xis.size() &&
                       got_key == xi_key(xis[static_cast<std::size_t>(x)]);
        }
        if (!consistent) throw store::SerdeError("clustershard layout drift");
        const std::uint64_t shard_corrupt = reader.u64();
        const std::uint64_t count = reader.u64();
        if (count != shard_slots[s].size()) {
          throw store::SerdeError("clustershard ISP count drift");
        }
        std::vector<IspOutcome> outcomes(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          IspOutcome& out = outcomes[static_cast<std::size_t>(i)];
          const AsIndex isp = static_cast<AsIndex>(reader.u64());
          if (isp != isps[shard_slots[s][static_cast<std::size_t>(i)]]) {
            throw store::SerdeError("clustershard ISP order drift");
          }
          out.failed = reader.u8() != 0;
          out.error = reader.str();
          out.per_xi = store::decode_clusterings(reader);
          if (out.per_xi.size() != xis.size()) {
            throw store::SerdeError("clustershard xi count drift");
          }
        }
        const std::uint64_t delta_count = reader.u64();
        std::vector<std::pair<std::string, std::uint64_t>> deltas;
        deltas.reserve(static_cast<std::size_t>(delta_count));
        for (std::uint64_t i = 0; i < delta_count; ++i) {
          std::string name = reader.str();
          const std::uint64_t value = reader.u64();
          deltas.emplace_back(std::move(name), value);
        }
        // Fully decoded: commit. Replaying the worker's domain-counter
        // deltas makes the merged registry match a single-process cold
        // run's counters exactly (the worker bracketed only the fan-out).
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          merged.outcomes[shard_slots[s][i]] = std::move(outcomes[i]);
        }
        for (const auto& [name, value] : deltas) {
          obs::metrics().counter(name).add(value);
        }
        merged.corrupt_matrices += shard_corrupt;
        replayed = true;
      } catch (const Error&) {
        replayed = false;
      }
    }
    if (!replayed) {
      // Missing, corrupt, or drifted shard artifact: recompute its ISPs in
      // this process. The outputs are bit-identical (that is the whole
      // bit-identity contract); only store.* bookkeeping shifts, which the
      // shard tests already exclude. Not a health event -- the transport
      // cache missed, nothing degraded.
      obs::metrics().counter("store.shard_fallback").add(1);
      std::vector<AsIndex> mine;
      mine.reserve(shard_slots[s].size());
      for (const std::size_t slot : shard_slots[s]) {
        mine.push_back(isps[slot]);
      }
      ClusterFanout fanout = cluster_isps(mine, xis);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        merged.outcomes[shard_slots[s][i]] = std::move(fanout.outcomes[i]);
      }
      merged.corrupt_matrices += fanout.corrupt_matrices;
    }
  }

  merge_isp_outcomes(isps, xis, std::move(merged), std::string(),
                     xi_key(xi));
}

const IspClustering* Pipeline::clustering_of(double xi, AsIndex isp) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const auto& all = clusterings(xi);
  const auto& index = cluster_index_.at(xi_key(xi));
  const auto it = index.find(isp);
  if (it == index.end()) return nullptr;
  return &all[it->second];
}

const RoutingEngine& Pipeline::routing() const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  if (!routing_) {
    obs::ScopedSpan span("pipeline.routing");
    routing_ = std::make_unique<RoutingEngine>(internet_);
  }
  return *routing_;
}

const PtrStore& Pipeline::ptr_store() const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  if (!ptr_) {
    obs::ScopedSpan span("pipeline.ptr_store");
    PtrFaultCounts counts;
    ptr_ = std::make_unique<PtrStore>(PtrStore::build(
        internet_, registry(Snapshot::k2023), scenario_.ptr, &counts));
    fault::StageHealth health;
    health.total = registry(Snapshot::k2023).server_count();
    health.dropped = counts.missing;
    if (counts.total() > 0) {
      health.status = fault::StageStatus::kDegraded;
      health.reasons.push_back(
          count_reason("PTR records withdrawn", counts.missing, health.total));
      health.reasons.push_back(
          count_reason("PTR records stale", counts.stale, health.total));
      health.reasons.push_back(
          count_reason("PTR records garbled", counts.garbled, health.total));
    }
    record_health("rdns", health);
  }
  return *ptr_;
}

const std::map<AsIndex, IspPeeringEvidence>& Pipeline::peering_study(
    Hypergiant hg) const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  const auto it = peering_.find(hg);
  if (it != peering_.end()) return it->second;

  obs::ScopedSpan span("pipeline.peering_study");
  // The engine carries the plan's BGP-flap knobs (folded into
  // scenario_.traceroute by the constructor); the IXP registry is shared
  // across hypergiants.
  if (!traceroute_engine_) {
    traceroute_engine_ =
        std::make_unique<TracerouteEngine>(internet_, scenario_.traceroute);
  }
  if (!ixp_registry_) {
    ixp_registry_ = std::make_unique<IxpRegistry>(
        IxpRegistry::build(internet_, scenario_.ixp));
  }
  const PeeringStudy study(internet_, *traceroute_engine_, *ixp_registry_,
                           scenario_.peering);
  const AsIndex hg_as = internet_.as_by_asn(profile(hg).asn);
  const std::vector<AsIndex> targets = internet_.access_isps();
  PeeringStudyOutcome outcome;
  std::map<AsIndex, IspPeeringEvidence> evidence =
      study.run(hg_as, targets, routing(), &outcome);

  fault::StageHealth health;
  health.total = outcome.targets;
  if (outcome.unstable_targets > 0) {
    health.status = fault::StageStatus::kDegraded;
    health.reasons.push_back(count_reason("targets with unstable paths",
                                          outcome.unstable_targets,
                                          outcome.targets));
    health.reasons.push_back(count_reason("peer verdicts downgraded",
                                          outcome.downgraded_peers,
                                          outcome.targets));
  }
  record_health("peering", health);
  return peering_.emplace(hg, std::move(evidence)).first->second;
}

const DemandModel& Pipeline::demand() const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  if (!demand_) {
    obs::ScopedSpan span("pipeline.demand");
    demand_ = std::make_unique<DemandModel>(internet_);
  }
  return *demand_;
}

const CapacityModel& Pipeline::capacity() const {
  std::lock_guard<std::recursive_mutex> lock(stage_mutex_);
  if (!capacity_) {
    obs::ScopedSpan span("pipeline.capacity");
    capacity_ = std::make_unique<CapacityModel>(internet_, registry(Snapshot::k2023),
                                                demand(), scenario_.capacity);
  }
  return *capacity_;
}

}  // namespace repro
