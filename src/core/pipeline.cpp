#include "core/pipeline.h"

#include <cmath>

#include "util/error.h"

namespace repro {

namespace {

/// Cache key for a xi value (xi is a config constant like 0.1/0.9, so a
/// fixed-point key is exact).
std::uint64_t xi_key(double xi) {
  require(xi > 0.0 && xi < 1.0, "Pipeline: xi outside (0, 1)");
  return static_cast<std::uint64_t>(std::llround(xi * 1e6));
}

}  // namespace

Pipeline::Pipeline(Scenario scenario) : scenario_(std::move(scenario)) {
  InternetGenerator generator(scenario_.topology);
  internet_ = generator.generate();
}

const OffnetRegistry& Pipeline::registry(Snapshot snapshot) const {
  const auto it = registries_.find(snapshot);
  if (it != registries_.end()) return it->second;
  const DeploymentPolicy policy(internet_, scenario_.deployment);
  return registries_.emplace(snapshot, policy.deploy(snapshot)).first->second;
}

const DiscoveryReport& Pipeline::discovery(Snapshot snapshot,
                                           Methodology methodology) const {
  const auto key = std::make_pair(snapshot, methodology);
  const auto it = reports_.find(key);
  if (it != reports_.end()) return it->second;

  const CertStore population = build_tls_population(
      internet_, registry(snapshot), snapshot, scenario_.population);
  const Scanner scanner(scenario_.scanner);
  const auto records = scanner.scan(population);
  const OffnetClassifier classifier(internet_, methodology);
  return reports_.emplace(key, classifier.classify(records)).first->second;
}

const VantagePointSet& Pipeline::vantage_points() const {
  if (!vps_) {
    vps_ = std::make_unique<VantagePointSet>(internet_, scenario_.vantage_points,
                                             scenario_.vantage_seed);
  }
  return *vps_;
}

const PingMesh& Pipeline::ping_mesh() const {
  if (!mesh_) {
    mesh_ = std::make_unique<PingMesh>(internet_, vantage_points(),
                                       scenario_.ping);
  }
  return *mesh_;
}

std::vector<AsIndex> Pipeline::hosting_isps_2023() const {
  return discovery(Snapshot::k2023, Methodology::k2023).isps_hosting_at_least(1);
}

const std::vector<IspClustering>& Pipeline::clusterings(double xi) const {
  const std::uint64_t key = xi_key(xi);
  const auto it = clusterings_.find(key);
  if (it != clusterings_.end()) return it->second;

  // The ordering phase dominates and is xi-independent, so compute the
  // paper's two standard settings together; an unusual xi is computed alone.
  std::vector<double> xis{xi};
  if (xi == 0.1 || xi == 0.9) xis = {0.1, 0.9};

  ColocationConfig config;
  config.filter = scenario_.filter;
  const ColocationClusterer clusterer(registry(Snapshot::k2023), ping_mesh(),
                                      vantage_points(), config);
  std::vector<std::vector<IspClustering>> results(xis.size());
  std::map<AsIndex, std::size_t> index;
  for (const AsIndex isp : hosting_isps_2023()) {
    index.emplace(isp, results.front().size());
    auto per_xi = clusterer.cluster_isp_multi(isp, xis);
    for (std::size_t x = 0; x < xis.size(); ++x) {
      results[x].push_back(std::move(per_xi[x]));
    }
  }
  for (std::size_t x = 0; x < xis.size(); ++x) {
    cluster_index_[xi_key(xis[x])] = index;
    clusterings_[xi_key(xis[x])] = std::move(results[x]);
  }
  return clusterings_.at(key);
}

const IspClustering* Pipeline::clustering_of(double xi, AsIndex isp) const {
  const auto& all = clusterings(xi);
  const auto& index = cluster_index_.at(xi_key(xi));
  const auto it = index.find(isp);
  if (it == index.end()) return nullptr;
  return &all[it->second];
}

const RoutingEngine& Pipeline::routing() const {
  if (!routing_) routing_ = std::make_unique<RoutingEngine>(internet_);
  return *routing_;
}

const DemandModel& Pipeline::demand() const {
  if (!demand_) demand_ = std::make_unique<DemandModel>(internet_);
  return *demand_;
}

const CapacityModel& Pipeline::capacity() const {
  if (!capacity_) {
    capacity_ = std::make_unique<CapacityModel>(internet_, registry(Snapshot::k2023),
                                                demand(), scenario_.capacity);
  }
  return *capacity_;
}

}  // namespace repro
