#include "core/scenario.h"

#include "store/serde.h"

namespace repro {

namespace {

/// Couples the pieces that must agree with the topology scale.
Scenario with_scale(GeneratorConfig topology, std::size_t vantage_points,
                    std::size_t min_usable_sites) {
  Scenario scenario;
  scenario.topology = topology;
  scenario.deployment.footprint_scale = topology.scale;
  scenario.vantage_points = vantage_points;
  scenario.filter.min_usable_sites = min_usable_sites;
  return scenario;
}

}  // namespace

std::string_view to_string(Scale scale) noexcept {
  switch (scale) {
    case Scale::kTiny: return "tiny";
    case Scale::kSmall: return "small";
    case Scale::kPaper: return "paper";
    case Scale::k10x: return "10x";
  }
  return "tiny";
}

std::optional<Scale> parse_scale(std::string_view name) noexcept {
  if (name == "tiny") return Scale::kTiny;
  if (name == "small") return Scale::kSmall;
  if (name == "paper") return Scale::kPaper;
  if (name == "10x") return Scale::k10x;
  return std::nullopt;
}

Scenario Scenario::tiny() {
  Scenario scenario = with_scale(GeneratorConfig::tiny(), 40, 25);
  scenario.scale = Scale::kTiny;
  scenario.population.background_per_isp = 1;
  scenario.population.onnet_servers_per_hg = 20;
  scenario.population.decoy_count = 10;
  scenario.peering.vm_count = 4;
  scenario.peering.slash24s_per_target = 2;
  return scenario;
}

Scenario Scenario::small() {
  Scenario scenario = with_scale(GeneratorConfig::small(), 80, 50);
  scenario.scale = Scale::kSmall;
  scenario.peering.vm_count = 6;
  return scenario;
}

Scenario Scenario::paper() {
  Scenario scenario = with_scale(GeneratorConfig::paper(), 163, 100);
  scenario.scale = Scale::kPaper;
  // At paper scale the per-ISP matrices stop fitting comfortably in RAM all
  // at once; stream them through mmap spill files (bit-identical, so the
  // digest -- and every shared artifact -- is unchanged).
  scenario.stream_matrices = true;
  scenario.stream_block_rows = 512;
  return scenario;
}

Scenario Scenario::tenx() {
  Scenario scenario = with_scale(GeneratorConfig::tenx(), 163, 100);
  scenario.scale = Scale::k10x;
  scenario.stream_matrices = true;
  scenario.stream_block_rows = 512;
  return scenario;
}

Scenario Scenario::at_scale(Scale scale) {
  switch (scale) {
    case Scale::kTiny: return tiny();
    case Scale::kSmall: return small();
    case Scale::kPaper: return paper();
    case Scale::k10x: return tenx();
  }
  return tiny();
}

namespace {

/// The topology section shared by measurement_digest and topology_digest.
/// Field-order matters: append-only, and bump the artifact schema versions
/// in store/serde.h when an encoding (not just a key input) changes.
void mix_topology(store::Fnv1a& h, const GeneratorConfig& topo) {
  h.mix("topology")
      .mix(topo.seed)
      .mix(topo.scale)
      .mix(topo.access_per_million_users)
      .mix(topo.max_access_per_country)
      .mix(topo.tier1_count)
      .mix(topo.ixp_metro_users_m)
      .mix(topo.users_per_slash24)
      .mix(topo.ixp_join_access)
      .mix(topo.ixp_join_transit)
      .mix(topo.ixp_join_tier1)
      .mix(topo.hg_ixp_peer_probability)
      .mix(topo.hg_pni_giant_isp)
      .mix(topo.hg_pni_large_isp)
      .mix(topo.hg_pni_medium_isp)
      .mix(topo.hg_pni_small_isp);
}

}  // namespace

std::uint64_t topology_digest(const GeneratorConfig& config) {
  store::Fnv1a h;
  mix_topology(h, config);
  return h.digest();
}

std::uint64_t measurement_digest(const Scenario& scenario) {
  store::Fnv1a h;
  mix_topology(h, scenario.topology);
  const DeploymentConfig& deploy = scenario.deployment;
  h.mix("deployment")
      .mix(deploy.seed)
      .mix(deploy.footprint_scale)
      .mix(deploy.colocate_all_probability)
      .mix(deploy.akamai_legacy_probability)
      .mix(deploy.server_count_multiplier)
      .mix(deploy.same_rack_probability);
  const PopulationConfig& population = scenario.population;
  h.mix("population")
      .mix(population.seed)
      .mix(population.background_per_isp)
      .mix(population.onnet_servers_per_hg)
      .mix(population.decoy_count);
  const ScannerConfig& scanner = scenario.scanner;
  h.mix("scanner").mix(scanner.seed).mix(scanner.miss_rate);
  const PingConfig& ping = scenario.ping;
  h.mix("ping")
      .mix(ping.seed)
      .mix(ping.probes)
      .mix(ping.inflation_min)
      .mix(ping.inflation_max)
      .mix(ping.facility_offset_mean_ms)
      .mix(ping.rack_offset_mean_ms)
      .mix(ping.per_ip_offset_ms)
      .mix(ping.jitter_mean_ms)
      .mix(ping.probe_loss)
      .mix(ping.unresponsive_ip_rate)
      .mix(ping.split_personality_rate)
      .mix(ping.icmp_limited_isp_rate)
      .mix(ping.icmp_limited_failure)
      .mix(ping.fault_seed)
      .mix(ping.vp_outage_rate)
      .mix(ping.icmp_storm_isp_rate)
      .mix(ping.icmp_storm_failure)
      .mix(ping.retry_budget);
  const FilterConfig& filter = scenario.filter;
  h.mix("filter")
      .mix(static_cast<std::uint64_t>(filter.min_usable_sites))
      .mix(static_cast<std::uint64_t>(filter.sol_check_candidates))
      .mix(filter.sol_tolerance_ms);
  h.mix("vantage")
      .mix(static_cast<std::uint64_t>(scenario.vantage_points))
      .mix(scenario.vantage_seed);
  return h.digest();
}

}  // namespace repro
