#include "core/scenario.h"

namespace repro {

namespace {

/// Couples the pieces that must agree with the topology scale.
Scenario with_scale(GeneratorConfig topology, std::size_t vantage_points,
                    std::size_t min_usable_sites) {
  Scenario scenario;
  scenario.topology = topology;
  scenario.deployment.footprint_scale = topology.scale;
  scenario.vantage_points = vantage_points;
  scenario.filter.min_usable_sites = min_usable_sites;
  return scenario;
}

}  // namespace

Scenario Scenario::tiny() {
  Scenario scenario = with_scale(GeneratorConfig::tiny(), 40, 25);
  scenario.population.background_per_isp = 1;
  scenario.population.onnet_servers_per_hg = 20;
  scenario.population.decoy_count = 10;
  scenario.peering.vm_count = 4;
  scenario.peering.slash24s_per_target = 2;
  return scenario;
}

Scenario Scenario::small() {
  Scenario scenario = with_scale(GeneratorConfig::small(), 80, 50);
  scenario.peering.vm_count = 6;
  return scenario;
}

Scenario Scenario::paper() {
  return with_scale(GeneratorConfig::paper(), 163, 100);
}

}  // namespace repro
