// The paper's analyses, one study per table/figure/section. Each study
// returns a plain result struct plus a render function that prints the same
// rows/series the paper reports (the bench binaries call these).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "rdns/validation.h"
#include "traffic/scenarios.h"
#include "util/stats.h"

namespace repro {

// ----------------------------------------------------------- Table 1 ------

struct Table1Row {
  Hypergiant hg = Hypergiant::kGoogle;
  std::size_t isps_2021 = 0;
  std::size_t isps_2023 = 0;
  /// ISPs found in the 2023 snapshot when applying the outdated 2021
  /// methodology (shows why the update was needed).
  std::size_t isps_2023_old_method = 0;

  double growth_percent() const noexcept {
    return isps_2021 == 0 ? 0.0
                          : (static_cast<double>(isps_2023) / isps_2021 - 1.0) *
                                100.0;
  }
};

struct Table1Study {
  std::vector<Table1Row> rows;
  std::size_t total_offnet_ips_2023 = 0;
  std::size_t total_hosting_isps_2023 = 0;
};

Table1Study table1_study(const Pipeline& pipeline);
std::string render(const Table1Study& study);

// ---------------------------------------------------------- Figure 1 ------

struct CountryHostingRow {
  std::string code;
  std::string name;
  double users_m = 0.0;       // Internet users in the synthetic world
  double frac_ge2 = 0.0;      // user fraction in ISPs hosting >= 2 HGs
  double frac_ge3 = 0.0;
  double frac_eq4 = 0.0;
};

struct Figure1Study {
  std::vector<CountryHostingRow> countries;  // sorted by users descending
  std::size_t isps_ge1 = 0;
  std::size_t isps_ge2 = 0;
  std::size_t isps_ge3 = 0;
  std::size_t isps_eq4 = 0;
};

Figure1Study figure1_study(const Pipeline& pipeline);
std::string render(const Figure1Study& study, std::size_t max_countries = 30);

// ----------------------------------------------------------- Table 2 ------

struct Table2Row {
  Hypergiant hg = Hypergiant::kGoogle;
  double xi = 0.1;
  std::size_t isp_count = 0;  // usable clustered ISPs hosting this HG
  // Percentages over isp_count; the five columns sum to ~100.
  double sole_pct = 0.0;
  double coloc_0_pct = 0.0;        // multi-HG ISP, 0% of offnets colocated
  double coloc_mid_low_pct = 0.0;  // (0%, 50%)
  double coloc_mid_high_pct = 0.0; // [50%, 100%)
  double coloc_full_pct = 0.0;     // 100%
};

struct Table2Study {
  std::vector<Table2Row> rows;  // hg-major, xi-minor (like the paper)
};

Table2Study table2_study(const Pipeline& pipeline, std::span<const double> xis);
std::string render(const Table2Study& study);

// ---------------------------------------------------------- Figure 2 ------

struct Figure2Series {
  double xi = 0.1;
  std::vector<CcdfPoint> ccdf;     // user-weighted CCDF of the fraction
  double users_frac_ge_quarter = 0.0;  // >= 25% of traffic from one facility
  double users_frac_all_four = 0.0;    // best facility hosts all four HGs
};

struct Figure2Study {
  std::vector<Figure2Series> series;
  double users_in_offnet_isps = 0.0;   // fraction of all users (paper: 76%)
  double users_analyzable = 0.0;       // fraction of all users (paper: 56%)
};

/// Estimated fraction of a user's traffic serveable from the "best" single
/// facility of the ISP (the inferred cluster hosting the most hypergiants).
double best_facility_fraction(const IspClustering& clustering,
                              const OffnetRegistry& registry);

Figure2Study figure2_study(const Pipeline& pipeline, std::span<const double> xis);
std::string render(const Figure2Study& study);

// ------------------------------------------------- Validation (S3.2) ------

struct ValidationStudy {
  double xi = 0.1;
  ValidationSummary with_corrections;
  ValidationSummary without_corrections;  // raw HOIHO, ambiguity included
};

ValidationStudy validation_study(const Pipeline& pipeline, double xi);
std::string render(const ValidationStudy& study);

// ------------------------------------------------ Longitudinal (S3.1) -----

/// "ISPs tended to host more hypergiants over time [and] multi-hypergiant
/// hosting will continue to increase": ground-truth footprints generated
/// year by year from the growth model anchored on the Table-1 snapshots.
struct LongitudinalRow {
  int year = 0;
  std::array<std::size_t, kHypergiantCount> isps_per_hg{};
  std::size_t hosting_isps = 0;
  std::size_t isps_ge2 = 0;
  std::size_t isps_ge3 = 0;
  std::size_t isps_eq4 = 0;
  double mean_hypergiants_per_hosting_isp = 0.0;
};

struct LongitudinalStudy {
  std::vector<LongitudinalRow> rows;  // ascending years
};

LongitudinalStudy longitudinal_study(const Pipeline& pipeline,
                                     int first_year = 2016,
                                     int last_year = 2025);
std::string render(const LongitudinalStudy& study);

// ------------------------------------------------------- Section 3.3 ------

/// Choke-point analysis: "authorities can exert control at a handful of
/// local choke points". Per country, how few facilities intercept a given
/// share of the country's offnet-served traffic (user-weighted, ground
/// truth)?
struct CountryChokepoints {
  std::string code;
  std::string name;
  double users_m = 0.0;
  /// Share of the country's user traffic that is offnet-served at all.
  double offnet_served_traffic_share = 0.0;
  /// Share of the country's *offnet-served* traffic interceptable at the
  /// single busiest facility.
  double top_facility_share = 0.0;
  /// Facilities needed to intercept 50% / 90% of offnet-served traffic.
  int facilities_for_half = 0;
  int facilities_for_ninety = 0;
  int facilities_total = 0;
};

struct Section33Study {
  std::vector<CountryChokepoints> countries;  // sorted by users descending
  /// Median (over countries) number of facilities covering half of the
  /// offnet-served traffic.
  double median_facilities_for_half = 0.0;
};

Section33Study section33_study(const Pipeline& pipeline);
std::string render(const Section33Study& study, std::size_t max_countries = 25);

// ------------------------------------------------------- Section 4.1 ------

struct SingleSiteRow {
  Hypergiant hg = Hypergiant::kGoogle;
  double single_site_frac_lo = 0.0;  // across the xi settings
  double single_site_frac_hi = 0.0;
};

struct Section41Study {
  std::vector<SingleSiteRow> single_site;  // per hypergiant
  CovidSurgeResult covid;
  std::vector<DiurnalPoint> diurnal;
};

Section41Study section41_study(const Pipeline& pipeline,
                               std::span<const double> xis);
std::string render(const Section41Study& study);

// ----------------------------------------------------- Section 4.2.1 ------

struct Section421Study {
  Hypergiant hg = Hypergiant::kGoogle;
  std::size_t offnet_isps = 0;        // ISPs hosting this HG's offnets
  double peer_pct = 0.0;              // of offnet_isps
  double possible_pct = 0.0;
  double no_evidence_pct = 0.0;
  std::size_t total_peers = 0;        // inferred peers among all probed ASes
  double via_ixp_pct = 0.0;           // of total_peers: >= 1 IXP adjacency
  double ixp_only_pct = 0.0;          // of total_peers: only IXP adjacencies
  /// Ground-truth check: true peering rate among offnet ISPs.
  double true_peering_pct = 0.0;
};

Section421Study section421_study(const Pipeline& pipeline,
                                 Hypergiant hg = Hypergiant::kGoogle);
std::string render(const Section421Study& study);

// ----------------------------------------------------- Section 4.2.2 ------

struct Section422Study {
  std::vector<PniUtilizationStats> per_hg;
};

Section422Study section422_study(const Pipeline& pipeline);
std::string render(const Section422Study& study);

// ------------------------------------------------------- Section 4.3 ------

struct Section43Study {
  std::size_t isps_studied = 0;
  /// Mean degradation of non-hypergiant traffic when the busiest facility
  /// fails, split by how many hypergiants it hosted.
  double mean_collateral_single_hg = 0.0;
  double mean_collateral_multi_hg = 0.0;
  /// Fraction of studied ISPs where the failure congests a shared link.
  double frac_shared_congestion = 0.0;
  /// Mean extra interdomain traffic (Gbps) pushed by the failure.
  double mean_interdomain_shift_gbps = 0.0;
};

Section43Study section43_study(const Pipeline& pipeline,
                               std::size_t max_isps = 400);
std::string render(const Section43Study& study);

// --------------------------------------------------------- Section 6 ------

/// Mitigation what-if: replay the Section 4.3 failure scenario under the
/// shared-link isolation policy the discussion proposes and compare the
/// collateral damage and the hypergiants' own degradation.
struct Section6Study {
  std::size_t isps_studied = 0;
  /// Mean collateral damage to other traffic during the failure, by policy.
  double collateral_best_effort = 0.0;
  double collateral_isolation = 0.0;
  /// Mean degraded hypergiant traffic (Gbps) during the failure, by policy
  /// (isolation shifts the pain onto the spilling hypergiants).
  double hg_degraded_best_effort_gbps = 0.0;
  double hg_degraded_isolation_gbps = 0.0;
};

Section6Study section6_study(const Pipeline& pipeline,
                             std::size_t max_isps = 400);
std::string render(const Section6Study& study);

}  // namespace repro
