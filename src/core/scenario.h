// One knob object for the whole reproduction: topology, deployment,
// measurement and inference settings. Presets scale the world from unit-test
// size to the paper's scale.
#pragma once

#include <optional>
#include <string_view>

#include "hypergiant/background.h"
#include "hypergiant/deployment.h"
#include "mlab/filters.h"
#include "mlab/ping_mesh.h"
#include "rdns/ptr_store.h"
#include "route/ixp_registry.h"
#include "route/peering_inference.h"
#include "route/traceroute.h"
#include "scan/scanner.h"
#include "topology/generator.h"
#include "traffic/capacity.h"

namespace repro {

/// Preset size of the world a Scenario describes: unit-test (`tiny`),
/// integration (`small`), the paper's real input size (`paper`: ~9-10k
/// access ISPs, 163 vantage points), and a 10x stress world beyond it.
/// The tag is metadata for reports and benches -- scenarios are compared by
/// their config fields, never by the label (see docs/SCALING.md).
enum class Scale { kTiny, kSmall, kPaper, k10x };

std::string_view to_string(Scale scale) noexcept;

/// Inverse of to_string ("tiny"/"small"/"paper"/"10x"); nullopt otherwise.
std::optional<Scale> parse_scale(std::string_view name) noexcept;

struct Scenario {
  GeneratorConfig topology;
  DeploymentConfig deployment;
  PopulationConfig population;
  ScannerConfig scanner;
  PingConfig ping;
  FilterConfig filter;
  PtrConfig ptr;
  IxpRegistryConfig ixp;
  TracerouteConfig traceroute;
  PeeringStudyConfig peering;
  CapacityConfig capacity;

  /// Number of M-Lab-style vantage points (the paper uses 163).
  std::size_t vantage_points = 163;
  std::uint64_t vantage_seed = 163163;

  /// Which preset built this scenario. Execution metadata, deliberately
  /// excluded from measurement_digest: the digest already covers every
  /// field the label implies.
  Scale scale = Scale::kTiny;

  /// Stream per-ISP latency matrices through memory-mapped spill files
  /// (store/matrix_file.h) instead of holding each decoded copy on the
  /// heap, and run the pairwise-distance pass in row blocks. On for the
  /// paper and 10x presets, where the matrices would otherwise dominate
  /// peak RSS. Streamed execution is bit-identical to in-memory execution
  /// (enforced by the `scale` ctest label), so -- like thread counts --
  /// these knobs are excluded from measurement_digest and never change
  /// which artifacts a scenario shares. See docs/SCALING.md.
  bool stream_matrices = false;

  /// Row-block granularity of the streamed pairwise-distance pass
  /// (0 = whole matrix in one block). Any value is bit-identical.
  std::size_t stream_block_rows = 0;

  /// Smallest world that exercises every code path; for unit tests.
  static Scenario tiny();
  /// Mid-size world for integration tests and quick examples.
  static Scenario small();
  /// Paper-scale world (used by the benchmark harnesses).
  static Scenario paper();
  /// 10x the paper's access-ISP population: the north-star stress preset.
  static Scenario tenx();
  /// The preset for a Scale tag.
  static Scenario at_scale(Scale scale);
};

/// 64-bit digest over every scenario field that determines the persistent
/// pipeline artifacts (topology, deployment, population, scanner, ping and
/// filter configs plus the vantage-point campaign). Two scenarios with the
/// same digest produce bit-identical scan records, TLS populations, latency
/// matrices and clusterings, so the artifact store keys on it. When you add
/// a field to one of these configs, mix it in here (and see the versioning
/// rules in docs/PERSISTENCE.md). Thread counts are deliberately excluded:
/// parallel execution is bit-identical to serial (docs/PARALLELISM.md), so
/// a warm start is valid across any REPRO_THREADS setting. The Scale tag
/// and the stream_matrices/stream_block_rows knobs are excluded for the
/// same reason: streamed execution is bit-identical to in-memory
/// (docs/SCALING.md), so both substrates share one artifact family.
std::uint64_t measurement_digest(const Scenario& scenario);

/// 64-bit digest over the topology-generator config alone: the key for the
/// warm-Internet artifact. Mixes exactly the topology section of
/// measurement_digest, so scenarios differing only in measurement settings
/// (deployment, ping, vantage...) share one persisted topology.
std::uint64_t topology_digest(const GeneratorConfig& config);

}  // namespace repro
