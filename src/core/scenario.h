// One knob object for the whole reproduction: topology, deployment,
// measurement and inference settings. Presets scale the world from unit-test
// size to the paper's scale.
#pragma once

#include "hypergiant/background.h"
#include "hypergiant/deployment.h"
#include "mlab/filters.h"
#include "mlab/ping_mesh.h"
#include "rdns/ptr_store.h"
#include "route/ixp_registry.h"
#include "route/peering_inference.h"
#include "route/traceroute.h"
#include "scan/scanner.h"
#include "topology/generator.h"
#include "traffic/capacity.h"

namespace repro {

struct Scenario {
  GeneratorConfig topology;
  DeploymentConfig deployment;
  PopulationConfig population;
  ScannerConfig scanner;
  PingConfig ping;
  FilterConfig filter;
  PtrConfig ptr;
  IxpRegistryConfig ixp;
  TracerouteConfig traceroute;
  PeeringStudyConfig peering;
  CapacityConfig capacity;

  /// Number of M-Lab-style vantage points (the paper uses 163).
  std::size_t vantage_points = 163;
  std::uint64_t vantage_seed = 163163;

  /// Smallest world that exercises every code path; for unit tests.
  static Scenario tiny();
  /// Mid-size world for integration tests and quick examples.
  static Scenario small();
  /// Paper-scale world (used by the benchmark harnesses).
  static Scenario paper();
};

/// 64-bit digest over every scenario field that determines the persistent
/// pipeline artifacts (topology, deployment, population, scanner, ping and
/// filter configs plus the vantage-point campaign). Two scenarios with the
/// same digest produce bit-identical scan records, TLS populations, latency
/// matrices and clusterings, so the artifact store keys on it. When you add
/// a field to one of these configs, mix it in here (and see the versioning
/// rules in docs/PERSISTENCE.md). Thread counts are deliberately excluded:
/// parallel execution is bit-identical to serial (docs/PARALLELISM.md), so
/// a warm start is valid across any REPRO_THREADS setting.
std::uint64_t measurement_digest(const Scenario& scenario);

/// 64-bit digest over the topology-generator config alone: the key for the
/// warm-Internet artifact. Mixes exactly the topology section of
/// measurement_digest, so scenarios differing only in measurement settings
/// (deployment, ping, vantage...) share one persisted topology.
std::uint64_t topology_digest(const GeneratorConfig& config);

}  // namespace repro
