// Appendix-A data cleaning: discard unresponsive IPs, discard IPs whose
// latencies cannot come from a single location (speed-of-light test against
// the known vantage-point geometry), and keep only ISPs with enough fully-
// responsive vantage points for accurate clustering.
#pragma once

#include <cstddef>
#include <vector>

#include "mlab/ping_mesh.h"

namespace repro {

struct FilterConfig {
  /// Minimum number of vantage points with successful measurements to all
  /// of an ISP's offnets (the paper uses 100 of the 163 M-Lab sites).
  std::size_t min_usable_sites = 100;

  /// The speed-of-light check tests all pairs among this many lowest-RTT
  /// vantage points per IP (violations always involve two low-RTT but
  /// mutually distant VPs, so the screen loses nothing and is ~30x faster
  /// than the full pairwise test).
  std::size_t sol_check_candidates = 24;

  /// Slack added to the speed-of-light bound (ms) for measurement error.
  double sol_tolerance_ms = 0.0;
};

/// Result of cleaning one ISP's latency matrix.
struct FilteredMatrix {
  /// Row indices (into the original matrix) that survived.
  std::vector<std::size_t> kept_rows;
  /// Column (VP) indices usable for clustering: finite for all kept rows.
  std::vector<std::size_t> kept_cols;
  /// Compact matrix: kept_rows.size() x kept_cols.size(), all finite.
  std::vector<double> rtt;

  std::size_t dropped_unresponsive = 0;
  std::size_t dropped_impossible = 0;

  /// Failed measurements (kNoMeasurement) that made it into the compact
  /// matrix anyway. By construction of kept_cols this must stay 0; a
  /// nonzero value means a filter invariant broke and NaNs would have
  /// silently poisoned trimmed_manhattan. Also exported as the
  /// `filters.nonfinite_leaked` obs counter.
  std::size_t nonfinite_leaked = 0;

  /// False when kept_cols.size() < min_usable_sites (ISP excluded).
  bool usable = false;

  double at(std::size_t row, std::size_t col) const {
    return rtt[row * kept_cols.size() + col];
  }
  std::size_t row_count() const noexcept { return kept_rows.size(); }
  std::size_t col_count() const noexcept { return kept_cols.size(); }
};

/// True if the IP's RTT vector is impossible for a single location: some
/// pair of vantage points i, j has rtt_i/2 + rtt_j/2 < propagation(d(i,j)).
bool violates_speed_of_light(const std::vector<double>& rtts,
                             const VantagePointSet& vps,
                             const FilterConfig& config);

/// Applies all Appendix-A filters to one ISP's matrix.
FilteredMatrix clean_matrix(const LatencyMatrix& matrix,
                            const VantagePointSet& vps,
                            const FilterConfig& config);

/// Source-agnostic variant over a row view (in-memory matrix or mmap spill).
/// With `materialize` false the compact `rtt` block stays empty -- the
/// streamed clustering path reconstructs individual compact rows on demand
/// via fill_compact_row instead of holding rows x cols doubles resident.
/// Every selection decision, drop count, and obs counter is computed
/// identically either way, so the two modes are bit-identical inputs to
/// clustering (docs/SCALING.md).
FilteredMatrix clean_matrix(const LatencyRows& rows, const VantagePointSet& vps,
                            const FilterConfig& config,
                            bool materialize = true);

/// Writes compact row `compact_row` (kept_cols.size() doubles) of the
/// cleaned matrix into `out`, reading from `rows`. Exactly the values pass 3
/// of clean_matrix would have stored at that row; touches no obs counters,
/// so streamed block fills may call it repeatedly without skewing the
/// `filters.*` totals that the bit-identity tests compare.
void fill_compact_row(const LatencyRows& rows, const FilteredMatrix& filtered,
                      std::size_t compact_row, double* out);

}  // namespace repro
