#include "mlab/vantage_points.h"

#include "util/error.h"
#include "util/rng.h"

namespace repro {

VantagePointSet::VantagePointSet(const Internet& internet, std::size_t count,
                                 std::uint64_t seed) {
  require(!internet.metros.empty(), "VantagePointSet: empty internet");
  Rng rng(seed);
  std::vector<double> weights;
  weights.reserve(internet.metros.size());
  for (const auto& metro : internet.metros) weights.push_back(metro.users);

  points_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto metro_index =
        static_cast<MetroIndex>(rng.weighted_index(weights));
    const Metro& metro = internet.metros[metro_index];
    VantagePoint vp;
    vp.index = i;
    vp.name = "mlab" + std::to_string(i + 1) + "-" + metro.iata;
    vp.metro = metro_index;
    vp.location = jitter_point(metro.location, 20.0, rng.uniform(), rng.uniform());
    points_.push_back(std::move(vp));
  }
}

}  // namespace repro
