// Latency measurement simulation (Appendix A of the paper): ping every
// offnet IP from every vantage point with 8 probes and keep the second
// smallest RTT.
//
// RTT model per (vantage point, server):
//   rtt = great-circle propagation * path inflation
//       + per-(VP, facility) path offset   <- separates facilities: servers
//                                             in different buildings take
//                                             different upstream paths
//       + per-(VP, rack) offset (small)    <- servers behind different
//                                             top-of-rack switches/uplinks;
//                                             this is what makes xi = 0.1
//                                             conservative (it splits racks)
//                                             while xi = 0.9 merges a
//                                             facility into one cluster
//       + per-IP offset (tiny)             <- NIC/stack variation
//       + queueing jitter (per probe)      <- what the 2nd-of-8 suppresses
//
// Pathologies injected to exercise the paper's filters:
//   * unresponsive IPs (the paper discards 12K of 261K),
//   * "impossible" IPs whose probes answer from two different locations
//     (anycast/NAT artifacts; the paper discards 1.9K via speed-of-light),
//   * ICMP-rate-limited ISPs whose measurements mostly fail (the paper
//     keeps only ISPs with >= 100 fully-responsive vantage points).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "hypergiant/deployment.h"
#include "mlab/vantage_points.h"

namespace repro {

/// NaN marker for a failed measurement.
inline constexpr double kNoMeasurement = std::numeric_limits<double>::quiet_NaN();

struct PingConfig {
  std::uint64_t seed = 5150;
  int probes = 8;

  /// Path-inflation multiplier range applied to the speed-of-light RTT.
  double inflation_min = 1.25;
  double inflation_max = 1.9;

  /// Mean of the per-(VP, facility) exponential path offset (ms). This is
  /// the signal that lets OPTICS separate facilities in the same metro.
  double facility_offset_mean_ms = 4.0;

  /// Mean of the per-(VP, rack) exponential offset (ms): sub-facility
  /// structure that the conservative xi splits on.
  double rack_offset_mean_ms = 0.7;

  /// Half-width of the per-IP deterministic offset (ms).
  double per_ip_offset_ms = 0.05;

  /// Mean queueing jitter per probe (ms, exponential).
  double jitter_mean_ms = 1.0;

  /// Per-probe loss probability under normal conditions.
  double probe_loss = 0.02;

  /// Fraction of offnet IPs that never answer pings.
  double unresponsive_ip_rate = 0.046;

  /// Fraction of offnet IPs that answer from two locations (impossible-
  /// latency injection).
  double split_personality_rate = 0.0073;

  /// Fraction of ISPs that rate-limit ICMP so aggressively that most
  /// measurements fail (these ISPs fall below the 100-VP threshold).
  double icmp_limited_isp_rate = 0.06;
  double icmp_limited_failure = 0.65;

  // --- degraded-mode knobs (all off by default, so the paper behaviour is
  // --- bit-identical; a FaultPlan fills them in via fault::apply_ping_faults,
  // --- see docs/ROBUSTNESS.md) ---

  /// Extra salt for the fault pathologies below, so two fault plans over
  /// the same measurement seed draw independent outage/storm sets.
  std::uint64_t fault_seed = 0;

  /// Fraction of vantage points that are completely dark (site outage for
  /// the whole campaign).
  double vp_outage_rate = 0.0;

  /// Extra fraction of ISPs under an ICMP rate-limit storm, and the
  /// per-probe failure probability while storming.
  double icmp_storm_isp_rate = 0.0;
  double icmp_storm_failure = 0.9;

  /// Re-probe rounds for a (VP, IP) measurement whose probes failed
  /// transiently (fewer than 2 of `probes` answered). 0 reproduces the
  /// paper's single 8-probe round. Unresponsive IPs and dark VPs are
  /// deterministic outages and are never retried.
  int retry_budget = 0;
};

/// Row-major latency matrix for one ISP: rows = offnet IPs, cols = VPs.
struct LatencyMatrix {
  std::vector<Ipv4> ips;                    // row keys
  std::vector<std::size_t> server_indices;  // registry indices, same order
  std::size_t vp_count = 0;
  std::vector<double> rtt;                  // ips.size() x vp_count, NaN = fail

  double at(std::size_t row, std::size_t col) const {
    return rtt[row * vp_count + col];
  }
  std::size_t row_count() const noexcept { return ips.size(); }
};

/// Read-only row-wise view of one ISP's latency matrix, decoupling the
/// cleaning/clustering layers from where the bytes live: an in-memory
/// LatencyMatrix (LatencyMatrixRows below) or a memory-mapped spill file
/// (store::MappedLatencyMatrix), which is how paper-scale runs keep per-ISP
/// matrices off the heap (docs/SCALING.md). Implementations must be safe
/// for concurrent const access: the streamed pairwise pass reads rows from
/// several pool workers at once.
class LatencyRows {
 public:
  virtual ~LatencyRows() = default;
  virtual std::size_t row_count() const noexcept = 0;
  virtual std::size_t vp_count() const noexcept = 0;
  virtual Ipv4 ip(std::size_t row) const = 0;
  virtual std::size_t server_index(std::size_t row) const = 0;
  /// Pointer to the row's vp_count contiguous RTTs (NaN = failed probe).
  virtual const double* row(std::size_t row) const = 0;
};

/// LatencyRows over an in-memory LatencyMatrix (non-owning).
class LatencyMatrixRows final : public LatencyRows {
 public:
  explicit LatencyMatrixRows(const LatencyMatrix& matrix) noexcept
      : matrix_(&matrix) {}
  std::size_t row_count() const noexcept override {
    return matrix_->row_count();
  }
  std::size_t vp_count() const noexcept override { return matrix_->vp_count; }
  Ipv4 ip(std::size_t row) const override { return matrix_->ips[row]; }
  std::size_t server_index(std::size_t row) const override {
    return matrix_->server_indices[row];
  }
  const double* row(std::size_t row) const override {
    return matrix_->rtt.data() + row * matrix_->vp_count;
  }

 private:
  const LatencyMatrix* matrix_;
};

/// Simulates the M-Lab ping campaign.
class PingMesh {
 public:
  PingMesh(const Internet& internet, const VantagePointSet& vps,
           PingConfig config);

  /// Measures all offnet servers of one ISP from every vantage point.
  LatencyMatrix measure_isp(const OffnetRegistry& registry, AsIndex isp) const;

  /// One (vp, server) measurement: second-smallest of `probes` RTT samples;
  /// NaN if fewer than two probes succeed or the IP is unresponsive.
  double measure_once(const VantagePoint& vp, const OffnetServer& server) const;

  /// Ground-truth pathology queries (tests and the appendix stats use them).
  bool ip_unresponsive(Ipv4 ip) const noexcept;
  bool ip_split_personality(Ipv4 ip) const noexcept;
  bool isp_icmp_limited(AsIndex isp) const noexcept;

  /// Injected-fault queries (false whenever the matching rate is zero).
  bool vp_dark(std::size_t vp_index) const noexcept;
  bool isp_storm_limited(AsIndex isp) const noexcept;

  const PingConfig& config() const noexcept { return config_; }

 private:
  double base_rtt_ms(const VantagePoint& vp, const OffnetServer& server,
                     FacilityIndex facility) const;

  const Internet& internet_;
  const VantagePointSet& vps_;
  PingConfig config_;
};

}  // namespace repro
