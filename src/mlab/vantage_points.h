// The measurement platform: a set of M-Lab-style vantage points with known
// locations, spread across the world's metros (the paper uses the 163 M-Lab
// sites).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/internet.h"

namespace repro {

struct VantagePoint {
  std::size_t index = 0;
  std::string name;           // e.g. "mlab1-usa"
  MetroIndex metro = kInvalidIndex;
  GeoPoint location;
};

/// Builds `count` vantage points, at most a few per metro, weighted towards
/// populous metros (like the real M-Lab deployment). Deterministic in seed.
class VantagePointSet {
 public:
  VantagePointSet(const Internet& internet, std::size_t count,
                  std::uint64_t seed);

  const std::vector<VantagePoint>& points() const noexcept { return points_; }
  std::size_t size() const noexcept { return points_.size(); }
  const VantagePoint& operator[](std::size_t i) const { return points_.at(i); }

 private:
  std::vector<VantagePoint> points_;
};

}  // namespace repro
