#include "mlab/ping_mesh.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace repro {

namespace {

/// Deterministic uniform in [0,1) from a key (stateless hashing).
double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

/// Deterministic exponential draw from a key.
double hash_exponential(std::uint64_t key, double mean) noexcept {
  double u = hash_uniform(key);
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) * mean;
}

std::uint64_t ip_key(Ipv4 ip, std::uint64_t salt) noexcept {
  return mix64((std::uint64_t{ip.value()} << 8) ^ salt);
}

}  // namespace

PingMesh::PingMesh(const Internet& internet, const VantagePointSet& vps,
                   PingConfig config)
    : internet_(internet), vps_(vps), config_(config) {
  require(config_.probes >= 2, "PingConfig: need at least 2 probes");
  require(config_.inflation_min >= 1.0 &&
              config_.inflation_max >= config_.inflation_min,
          "PingConfig: bad inflation range");
}

bool PingMesh::ip_unresponsive(Ipv4 ip) const noexcept {
  return hash_uniform(ip_key(ip, config_.seed ^ 0x11)) <
         config_.unresponsive_ip_rate;
}

bool PingMesh::ip_split_personality(Ipv4 ip) const noexcept {
  if (ip_unresponsive(ip)) return false;
  return hash_uniform(ip_key(ip, config_.seed ^ 0x22)) <
         config_.split_personality_rate;
}

bool PingMesh::isp_icmp_limited(AsIndex isp) const noexcept {
  return hash_uniform(mix64(config_.seed ^ 0x33) ^ mix64(isp)) <
         config_.icmp_limited_isp_rate;
}

bool PingMesh::vp_dark(std::size_t vp_index) const noexcept {
  if (config_.vp_outage_rate <= 0.0) return false;
  return hash_uniform(mix64(config_.seed ^ config_.fault_seed ^ 0xDA1) ^
                      mix64(vp_index)) < config_.vp_outage_rate;
}

bool PingMesh::isp_storm_limited(AsIndex isp) const noexcept {
  if (config_.icmp_storm_isp_rate <= 0.0) return false;
  return hash_uniform(mix64(config_.seed ^ config_.fault_seed ^ 0x570) ^
                      mix64(isp)) < config_.icmp_storm_isp_rate;
}

double PingMesh::base_rtt_ms(const VantagePoint& vp, const OffnetServer& server,
                             FacilityIndex facility) const {
  const GeoPoint& server_location = internet_.facilities[facility].location;
  const double light = min_rtt_ms(vp.location, server_location);
  // Path inflation is a property of the (VP, facility) route.
  const std::uint64_t route_key =
      mix64(config_.seed ^ 0x44) ^ mix64(vp.index * 100003ULL + facility);
  const double inflation =
      config_.inflation_min +
      (config_.inflation_max - config_.inflation_min) * hash_uniform(route_key);
  const double facility_offset =
      hash_exponential(route_key ^ 0x55, config_.facility_offset_mean_ms);
  // Rack key: servers of *any* hypergiant in the same facility and rack
  // share the same top-of-rack path from a given vantage point.
  const std::uint64_t rack_key =
      mix64(route_key ^ 0xBB) ^
      mix64(static_cast<std::uint64_t>(server.rack) * 2654435761ULL);
  const double rack_offset =
      hash_exponential(rack_key, config_.rack_offset_mean_ms);
  const double ip_offset =
      (hash_uniform(ip_key(server.ip, config_.seed ^ 0x66)) * 2.0 - 1.0) *
      config_.per_ip_offset_ms;
  return light * inflation + facility_offset + rack_offset + ip_offset;
}

double PingMesh::measure_once(const VantagePoint& vp,
                              const OffnetServer& server) const {
  // Deterministic outages: no probe ever leaves a dark VP and an
  // unresponsive IP never answers, so the retry budget does not apply.
  if (vp_dark(vp.index)) return kNoMeasurement;
  if (ip_unresponsive(server.ip)) return kNoMeasurement;

  double loss = config_.probe_loss;
  if (isp_icmp_limited(server.isp)) loss = config_.icmp_limited_failure;
  if (isp_storm_limited(server.isp)) {
    loss = std::max(loss, config_.icmp_storm_failure);
  }

  // Split-personality IPs answer from their real facility or from a distant
  // "twin" facility depending on the probe -- we model the per-VP outcome:
  // roughly half the VPs see the twin.
  FacilityIndex facility = server.facility;
  if (ip_split_personality(server.ip)) {
    const std::uint64_t side_key =
        ip_key(server.ip, config_.seed ^ 0x77) ^ mix64(vp.index);
    if (hash_uniform(side_key) < 0.5) {
      // Twin facility: deterministic per IP, far away in index space.
      facility = static_cast<FacilityIndex>(
          mix64(ip_key(server.ip, config_.seed ^ 0x88)) %
          internet_.facilities.size());
    }
  }

  const int rounds = 1 + std::max(0, config_.retry_budget);
  for (int round = 0; round < rounds; ++round) {
    // Per-measurement RNG (deterministic for the (vp, ip, round) triple).
    // Round 0 draws from exactly the original stream, so retry_budget = 0 --
    // and any measurement that succeeds on the first round -- is
    // bit-identical to the paper behaviour.
    const std::uint64_t round_salt =
        round == 0 ? 0
                   : mix64(config_.fault_seed ^
                           (0xEE00 + static_cast<std::uint64_t>(round)));
    Rng rng(mix64(config_.seed ^ 0x99) ^ ip_key(server.ip, vp.index) ^
            round_salt);

    // Number of responsive probes ~ Binomial(probes, 1 - loss).
    int responsive = 0;
    for (int i = 0; i < config_.probes; ++i) {
      if (!rng.chance(loss)) ++responsive;
    }
    if (responsive < 2) {
      if (round + 1 < rounds) {
        static obs::CachedCounter reprobes("mlab.reprobe_rounds");
        reprobes.add(1);
      }
      continue;
    }
    if (round > 0) {
      static obs::CachedCounter recovered("mlab.reprobe_recovered");
      recovered.add(1);
    }

    // Second-smallest of `responsive` iid exponential jitters, via the order-
    // statistic representation X(k) = sum_{i<=k} E_i / (n - i + 1).
    const double n = static_cast<double>(responsive);
    const double jitter_second =
        rng.exponential(1.0) * config_.jitter_mean_ms / n +
        rng.exponential(1.0) * config_.jitter_mean_ms / (n - 1.0);

    return base_rtt_ms(vp, server, facility) + jitter_second;
  }
  return kNoMeasurement;
}

LatencyMatrix PingMesh::measure_isp(const OffnetRegistry& registry,
                                    AsIndex isp) const {
  obs::ScopedTimer timer("mlab.measure_isp_ms");
  LatencyMatrix matrix;
  matrix.server_indices = registry.servers_at(isp);
  matrix.vp_count = vps_.size();
  matrix.ips.reserve(matrix.server_indices.size());
  for (const std::size_t si : matrix.server_indices) {
    matrix.ips.push_back(registry.servers()[si].ip);
  }
  matrix.rtt.resize(matrix.ips.size() * matrix.vp_count, kNoMeasurement);
  for (std::size_t row = 0; row < matrix.server_indices.size(); ++row) {
    const OffnetServer& server = registry.servers()[matrix.server_indices[row]];
    for (std::size_t col = 0; col < matrix.vp_count; ++col) {
      matrix.rtt[row * matrix.vp_count + col] =
          measure_once(vps_[col], server);
    }
  }
  // measure_isp runs on thread-pool workers during the clustering fan-out;
  // like the mlab.reprobe_* counters above, these use lock-free cached
  // handles so concurrent per-ISP increments stay exact.
  static obs::CachedCounter ips_pinged("mlab.ips_pinged");
  static obs::CachedCounter measurements("mlab.measurements");
  ips_pinged.add(matrix.ips.size());
  measurements.add(matrix.ips.size() * matrix.vp_count);
  return matrix;
}

}  // namespace repro
