#include "mlab/filters.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace repro {

namespace {

bool finite(double value) noexcept { return std::isfinite(value); }

}  // namespace

bool violates_speed_of_light(const std::vector<double>& rtts,
                             const VantagePointSet& vps,
                             const FilterConfig& config) {
  // Gather finite measurements sorted ascending; test pairs among the lowest.
  std::vector<std::size_t> cols;
  cols.reserve(rtts.size());
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    if (finite(rtts[i])) cols.push_back(i);
  }
  if (cols.size() < 2) return false;
  std::sort(cols.begin(), cols.end(),
            [&](std::size_t a, std::size_t b) { return rtts[a] < rtts[b]; });
  const std::size_t limit = std::min(cols.size(), config.sol_check_candidates);
  for (std::size_t i = 0; i < limit; ++i) {
    for (std::size_t j = i + 1; j < limit; ++j) {
      const double bound =
          propagation_ms(haversine_km(vps[cols[i]].location, vps[cols[j]].location));
      if (rtts[cols[i]] / 2.0 + rtts[cols[j]] / 2.0 + config.sol_tolerance_ms <
          bound) {
        return true;
      }
    }
  }
  return false;
}

FilteredMatrix clean_matrix(const LatencyMatrix& matrix,
                            const VantagePointSet& vps,
                            const FilterConfig& config) {
  return clean_matrix(LatencyMatrixRows(matrix), vps, config);
}

FilteredMatrix clean_matrix(const LatencyRows& rows, const VantagePointSet& vps,
                            const FilterConfig& config, bool materialize) {
  FilteredMatrix out;
  const std::size_t vp_count = rows.vp_count();

  // Pass 1: drop unresponsive and physically impossible rows.
  std::vector<double> rtts(vp_count);
  for (std::size_t row = 0; row < rows.row_count(); ++row) {
    const double* values = rows.row(row);
    bool any = false;
    for (std::size_t col = 0; col < vp_count; ++col) {
      rtts[col] = values[col];
      any = any || finite(rtts[col]);
    }
    if (!any) {
      ++out.dropped_unresponsive;
      continue;
    }
    if (violates_speed_of_light(rtts, vps, config)) {
      ++out.dropped_impossible;
      continue;
    }
    out.kept_rows.push_back(row);
  }

  // Pass 2: columns with successful measurements to all kept rows.
  for (std::size_t col = 0; col < vp_count; ++col) {
    bool all = !out.kept_rows.empty();
    for (const std::size_t row : out.kept_rows) {
      if (!finite(rows.row(row)[col])) {
        all = false;
        break;
      }
    }
    if (all) out.kept_cols.push_back(col);
  }

  out.usable = out.kept_cols.size() >= config.min_usable_sites &&
               !out.kept_rows.empty();

  // Pass 3: compact matrix, counting any failed measurement that slips
  // through (it would otherwise reach trimmed_manhattan as a silent NaN).
  // The leak scan runs even when the caller skips materialization, so the
  // `filters.*` counters below come out identical in streamed and
  // in-memory modes -- test_scale compares them verbatim.
  if (materialize) {
    out.rtt.reserve(out.kept_rows.size() * out.kept_cols.size());
  }
  for (const std::size_t row : out.kept_rows) {
    const double* values = rows.row(row);
    for (const std::size_t col : out.kept_cols) {
      const double value = values[col];
      if (!finite(value)) ++out.nonfinite_leaked;
      if (materialize) out.rtt.push_back(value);
    }
  }

  // clean_matrix runs once per ISP on thread-pool workers (the clustering
  // fan-out), so these bumps must be safe under concurrent increments:
  // CachedCounter resolves the registry entry once and then does lock-free
  // atomic adds, and the totals are sums of per-ISP contributions, so they
  // are invariant under any interleaving (enforced by tests/test_parallel).
  static obs::CachedCounter nonfinite_leaked("filters.nonfinite_leaked");
  static obs::CachedCounter dropped_unresponsive(
      "filters.ips_dropped_unresponsive");
  static obs::CachedCounter dropped_speed_of_light(
      "filters.ips_dropped_speed_of_light");
  static obs::CachedCounter ips_kept("filters.ips_kept");
  static obs::CachedCounter vps_discarded("filters.vps_discarded");
  static obs::CachedCounter vps_kept("filters.vps_kept");
  static obs::CachedCounter below_min_sites("filters.isps_below_min_sites");
  nonfinite_leaked.add(out.nonfinite_leaked);
  dropped_unresponsive.add(out.dropped_unresponsive);
  dropped_speed_of_light.add(out.dropped_impossible);
  ips_kept.add(out.kept_rows.size());
  vps_discarded.add(vp_count - out.kept_cols.size());
  vps_kept.add(out.kept_cols.size());
  if (!out.usable) below_min_sites.add(1);
  return out;
}

void fill_compact_row(const LatencyRows& rows, const FilteredMatrix& filtered,
                      std::size_t compact_row, double* out) {
  const double* values = rows.row(filtered.kept_rows[compact_row]);
  for (std::size_t i = 0; i < filtered.kept_cols.size(); ++i) {
    out[i] = values[filtered.kept_cols[i]];
  }
}

}  // namespace repro
