#include "obs/sampler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "obs/trace.h"

namespace repro::obs {

ResourceSample read_resource_sample() noexcept {
  ResourceSample sample;
  sample.t_ms = tracer().now_ms();
#if defined(__linux__)
  if (std::FILE* file = std::fopen("/proc/self/statm", "r")) {
    long size_pages = 0;
    long rss_pages = 0;
    if (std::fscanf(file, "%ld %ld", &size_pages, &rss_pages) == 2) {
      const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
      sample.rss_kb = rss_pages * (page_kb > 0 ? page_kb : 4);
    }
    std::fclose(file);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    sample.utime_ms = static_cast<double>(usage.ru_utime.tv_sec) * 1e3 +
                      static_cast<double>(usage.ru_utime.tv_usec) / 1e3;
    sample.stime_ms = static_cast<double>(usage.ru_stime.tv_sec) * 1e3 +
                      static_cast<double>(usage.ru_stime.tv_usec) / 1e3;
    sample.minor_faults = usage.ru_minflt;
    sample.major_faults = usage.ru_majflt;
  }
#endif
  return sample;
}

struct ResourceSampler::Impl {
  mutable std::mutex mutex;
  std::condition_variable wake;
  std::vector<ResourceSample> samples;
  std::thread thread;
  bool running = false;
  bool stop_requested = false;
};

ResourceSampler::ResourceSampler() : impl_(new Impl) {}

ResourceSampler& ResourceSampler::instance() {
  static ResourceSampler the_sampler;
  return the_sampler;
}

void ResourceSampler::start(double hz) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->running) return;
  const double clamped = std::clamp(hz, 0.1, 1000.0);
  const auto period = std::chrono::duration<double>(1.0 / clamped);
  impl_->running = true;
  impl_->stop_requested = false;
  impl_->samples.push_back(read_resource_sample());
  impl_->thread = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    while (!impl_->stop_requested) {
      // wait_for rather than a deadline loop: drift is irrelevant for
      // counter tracks and this wakes immediately on stop().
      impl_->wake.wait_for(lock, period,
                           [this] { return impl_->stop_requested; });
      if (impl_->stop_requested) break;
      lock.unlock();
      const ResourceSample sample = read_resource_sample();
      lock.lock();
      impl_->samples.push_back(sample);
    }
  });
}

void ResourceSampler::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (!impl_->running) return;
    impl_->stop_requested = true;
    to_join = std::move(impl_->thread);
  }
  impl_->wake.notify_all();
  to_join.join();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->samples.push_back(read_resource_sample());
  impl_->running = false;
}

bool ResourceSampler::running() const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->running;
}

bool ResourceSampler::maybe_start_from_env(double default_hz) {
  const char* value = std::getenv("REPRO_SAMPLE_HZ");
  double hz = 0.0;
  if (value != nullptr && *value != '\0') {
    char* end = nullptr;
    hz = std::strtod(value, &end);
    if (end == value || hz <= 0.0) return false;  // "0" or junk: disabled
  } else if (tracing_enabled()) {
    hz = default_hz;
  } else {
    return false;
  }
  start(hz);
  return true;
}

std::vector<ResourceSample> ResourceSampler::samples() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->samples;
}

void ResourceSampler::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->samples.clear();
}

}  // namespace repro::obs
