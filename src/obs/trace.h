// Lightweight tracing for the reproduction pipeline: RAII spans that record
// a tree of (name, wall time, RSS delta) into a process-global Tracer.
//
// Tracing is off by default so tests and library users pay (almost) nothing:
// a disabled ScopedSpan is one relaxed atomic load. It is enabled either by
// the REPRO_TRACE=1 environment variable (read once at first use) or
// programmatically with set_tracing(true). Span nesting follows lexical
// scope per thread. Spans opened on raw std::threads become roots of their
// own subtrees; spans opened inside ThreadPool tasks (including every
// parallel_for body) are re-parented under the submitting thread's
// innermost open span via the task-context hooks the tracer installs into
// util/thread_pool.h, so a parallel fan-out renders as one coherent tree.
// Each enqueue->run handoff additionally records a pair of flow events
// (phase 's' on the submitting thread, 'f' on the worker) that the Perfetto
// exporter (obs/perfetto.h) turns into flow arrows.
//
// Every closed span also records its duration into the global
// MetricsRegistry histogram "span.<name>" (milliseconds), so per-span
// p50/p90/p99 are available through the histogram API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace repro::obs {

/// Sentinel for "no parent" / "no span".
inline constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

/// One node of the span tree. Times are milliseconds; start_ms is the
/// offset from the tracer's epoch (its construction or last reset).
struct Span {
  std::size_t id = kNoSpan;
  std::size_t parent = kNoSpan;  // kNoSpan for roots
  int depth = 0;
  int tid = 0;                  // stable per-thread track id (0 = first)
  std::string name;
  double start_ms = 0.0;
  double wall_ms = -1.0;        // -1 while the span is still open
  long rss_delta_kb = 0;        // VmRSS end - start (0 when unavailable)
  bool closed = false;
};

/// One half of an enqueue->run handoff across the thread pool. Pairs share
/// an id: phase 's' is recorded at submit time on the submitting thread,
/// phase 'f' on the worker when the task starts (Chrome trace-event flow
/// phases). `span` is the span the event is bound to.
struct FlowEvent {
  std::uint64_t id = 0;
  double ts_ms = 0.0;
  int tid = 0;
  char phase = 's';             // 's' (start) or 'f' (finish)
  std::size_t span = kNoSpan;
};

/// True when tracing is enabled (REPRO_TRACE=1 or set_tracing(true)).
bool tracing_enabled() noexcept;

/// Programmatic override of the REPRO_TRACE toggle (tests, examples).
void set_tracing(bool on) noexcept;

/// Resident set size of this process in kB; 0 where /proc is unavailable.
long current_rss_kb() noexcept;

/// Thread-safe global recorder of the span tree.
class Tracer {
 public:
  static Tracer& instance();

  /// Opens a span under the calling thread's innermost open span.
  /// Returns kNoSpan (and records nothing) when tracing is disabled.
  std::size_t begin_span(std::string_view name);

  /// Closes a span opened by this thread. No-op for kNoSpan; closing a span
  /// that predates a reset() is a checked no-op counted by the
  /// "trace.dropped_spans" counter (never an index reuse).
  void end_span(std::size_t id);

  /// Task-context propagation (used by the thread-pool hooks; not a public
  /// span API). capture_task_context() snapshots the calling thread's
  /// innermost open span and records the flow 's' event; it returns 0 when
  /// tracing is off or no span is open. adopt_task_context() opens a
  /// "pool.task" span on the calling (worker) thread, parented under the
  /// captured span, and records the matching flow 'f' event; close it with
  /// end_span() like any other span.
  std::uint64_t capture_task_context();
  std::size_t adopt_task_context(std::uint64_t token);

  /// Milliseconds since the tracer epoch, on the same clock and timeline as
  /// Span::start_ms (used by the resource sampler and the trace exporter).
  double now_ms() const;

  /// Stable small integer identifying the calling thread in Span::tid.
  static int current_tid() noexcept;

  /// Copy of all spans recorded so far (closed and still open).
  std::vector<Span> spans() const;

  /// Copy of all flow events recorded so far.
  std::vector<FlowEvent> flow_events() const;

  /// Drops all recorded spans and restarts the epoch. Open ScopedSpans
  /// from before a reset are ignored when they close.
  void reset();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();
  struct Impl;
  Impl* impl_;
};

/// RAII span: opens on construction, closes on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name)
      : id_(Tracer::instance().begin_span(name)) {}
  ~ScopedSpan() { Tracer::instance().end_span(id_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::size_t id_;
};

/// Shorthand for the global tracer.
inline Tracer& tracer() { return Tracer::instance(); }

}  // namespace repro::obs
