// Minimal JSON document model and recursive-descent parser, sized for the
// run_report.json / trace.json schemas: objects, arrays, strings, finite
// numbers, bools, null. Used by the report round-trip tests, the
// repro-bench trend CLI, and the check.sh trace-smoke validation; not a
// general-purpose JSON library (no surrogate-pair decoding, numbers parsed
// as double, nesting capped at 192 levels to keep adversarial input from
// overflowing the parser stack, duplicate object keys rejected as a
// ParseError since "which copy wins" is parser-dependent ambiguity).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace repro::obs {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw repro::Error on kind mismatch.
  bool boolean() const;
  double number() const;
  const std::string& str() const;
  const Array& array() const;
  const Object& object() const;

  /// Object member access; throws repro::NotFoundError for a missing key.
  const JsonValue& at(std::string_view key) const;
  /// True if this is an object containing `key`.
  bool contains(std::string_view key) const noexcept;
  /// Array element access; throws repro::Error when out of range.
  const JsonValue& at(std::size_t index) const;
  std::size_t size() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parses a complete JSON document; throws repro::ParseError on malformed
/// input or trailing garbage.
JsonValue parse_json(std::string_view text);

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view text);

/// Formats a finite double as a JSON number; NaN and infinities (which JSON
/// cannot represent) become 0 and +/-1e308 respectively.
std::string json_number(double value);

}  // namespace repro::obs
