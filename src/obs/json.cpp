#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace repro::obs {

bool JsonValue::boolean() const {
  require(is_bool(), "JsonValue: not a bool");
  return std::get<bool>(value_);
}

double JsonValue::number() const {
  require(is_number(), "JsonValue: not a number");
  return std::get<double>(value_);
}

const std::string& JsonValue::str() const {
  require(is_string(), "JsonValue: not a string");
  return std::get<std::string>(value_);
}

const JsonValue::Array& JsonValue::array() const {
  require(is_array(), "JsonValue: not an array");
  return std::get<Array>(value_);
}

const JsonValue::Object& JsonValue::object() const {
  require(is_object(), "JsonValue: not an object");
  return std::get<Object>(value_);
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const Object& members = object();
  const auto it = members.find(std::string(key));
  if (it == members.end()) {
    throw NotFoundError("JSON key '" + std::string(key) + "'");
  }
  return it->second;
}

bool JsonValue::contains(std::string_view key) const noexcept {
  if (!is_object()) return false;
  return std::get<Object>(value_).contains(std::string(key));
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const Array& elements = array();
  require(index < elements.size(), "JsonValue: array index out of range");
  return elements[index];
}

std::size_t JsonValue::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  require(false, "JsonValue: size() on a scalar");
  return 0;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  /// Recursion limit: deep enough for any schema we emit (run reports nest
  /// ~4 levels), shallow enough that adversarially nested input fails with
  /// ParseError instead of overflowing the stack.
  static constexpr int kMaxDepth = 192;
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("JSON at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting deeper than 192 levels");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue(nullptr);
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    ++depth_;
    JsonValue::Object members;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(members));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      // Duplicate keys are rejected rather than silently resolved: which
      // copy wins differs between JSON parsers, so a duplicated key in a
      // service request is an ambiguity the caller must fix.
      JsonValue value = parse_value();
      if (!members.emplace(key, std::move(value)).second) {
        fail("duplicate object key '" + key + "'");
      }
      const char next = peek();
      ++pos_;
      if (next == '}') {
        --depth_;
        return JsonValue(std::move(members));
      }
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    ++depth_;
    JsonValue::Array elements;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return JsonValue(std::move(elements));
    }
    while (true) {
      elements.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') {
        --depth_;
        return JsonValue(std::move(elements));
      }
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the code point (no surrogate-pair handling).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (std::isnan(value)) return "0";
  if (std::isinf(value)) return value > 0 ? "1e308" : "-1e308";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace repro::obs
