#include "obs/perfetto.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <set>
#include <string>

#include "obs/json.h"
#include "obs/report.h"
#include "util/table.h"

namespace repro::obs {

namespace {

constexpr int kPid = 1;  // single-process trace; any stable value works

std::string event_prefix(const char* ph, double ts_ms, int tid) {
  return std::string("{\"ph\":\"") + ph +
         "\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) +
         ",\"ts\":" + json_number(ts_ms * 1000.0);  // trace ts unit is us
}

void append_metadata(std::string& out, int tid, const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"tid\":" + std::to_string(tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(name) + "\"}},";
}

void append_counter(std::string& out, double ts_ms, const char* name,
                    double value) {
  out += event_prefix("C", ts_ms, 0) + ",\"name\":\"" + name +
         "\",\"args\":{\"value\":" + json_number(value) + "}},";
}

}  // namespace

std::string trace_events_json(const std::vector<Span>& spans,
                              const std::vector<FlowEvent>& flows,
                              const std::vector<ResourceSample>& samples) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Process + thread metadata. Thread track 0 is the first thread that
  // traced anything -- the harness main thread in every current binary.
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"repro\"}},";
  std::set<int> tids;
  for (const Span& span : spans) tids.insert(span.tid);
  for (const FlowEvent& flow : flows) tids.insert(flow.tid);
  if (!samples.empty()) tids.insert(0);
  for (const int tid : tids) {
    append_metadata(out, tid,
                    tid == 0 ? "main" : "worker-" + std::to_string(tid));
  }

  // Spans: complete slices when closed, unmatched begins when still open.
  for (const Span& span : spans) {
    if (span.closed) {
      out += event_prefix("X", span.start_ms, span.tid);
      out += ",\"dur\":" + json_number(span.wall_ms * 1000.0);
    } else {
      out += event_prefix("B", span.start_ms, span.tid);
    }
    out += ",\"name\":\"" + json_escape(span.name) + "\"";
    out += ",\"args\":{\"span_id\":" + std::to_string(span.id) +
           ",\"parent\":" +
           (span.parent == kNoSpan ? std::string("-1")
                                   : std::to_string(span.parent)) +
           ",\"rss_delta_kb\":" + std::to_string(span.rss_delta_kb) + "}},";
  }

  // Flow arrows: enqueue ('s') on the submitting thread, binding to the
  // enclosing ('f', bp:e) pool.task slice on the worker.
  for (const FlowEvent& flow : flows) {
    out += event_prefix(flow.phase == 's' ? "s" : "f", flow.ts_ms, flow.tid);
    out += ",\"cat\":\"pool\",\"name\":\"pool.submit\",\"id\":" +
           std::to_string(flow.id);
    if (flow.phase == 'f') out += ",\"bp\":\"e\"";
    out += "},";
  }

  // Resource counter tracks (one series per sampled quantity).
  for (const ResourceSample& sample : samples) {
    append_counter(out, sample.t_ms, "sampler.rss_mb",
                   static_cast<double>(sample.rss_kb) / 1024.0);
    append_counter(out, sample.t_ms, "sampler.utime_ms", sample.utime_ms);
    append_counter(out, sample.t_ms, "sampler.stime_ms", sample.stime_ms);
    append_counter(out, sample.t_ms, "sampler.minor_faults",
                   static_cast<double>(sample.minor_faults));
    append_counter(out, sample.t_ms, "sampler.major_faults",
                   static_cast<double>(sample.major_faults));
  }

  if (out.back() == ',') out.pop_back();
  out += "]}";
  return out;
}

std::string trace_events_json() {
  return trace_events_json(tracer().spans(), tracer().flow_events(),
                           sampler().samples());
}

std::string default_trace_path() {
  const char* path = std::getenv("REPRO_TRACE_EVENTS");
  if (path != nullptr && *path != '\0') return path;
  const std::string report = default_report_path();
  const std::size_t slash = report.find_last_of('/');
  if (slash == std::string::npos) return "trace.json";
  return report.substr(0, slash + 1) + "trace.json";
}

void write_trace(const std::string& path) {
  write_file(path, trace_events_json() + "\n");
}

bool maybe_write_trace() {
  if (!tracing_enabled()) return false;
  // Best effort, like maybe_write_run_report: a bad path must not abort a
  // harness that already finished its real work.
  try {
    write_trace(default_trace_path());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[trace: failed to write %s: %s]\n",
                 default_trace_path().c_str(), e.what());
    return false;
  }
  return true;
}

}  // namespace repro::obs
