// Run-report export: serializes the global span tree and metrics registry
// to the stable `run_report.json` schema (documented in
// docs/OBSERVABILITY.md) and to human-readable text tables.
//
// Schema sketch (repro.run_report.v1):
//   {
//     "schema": "repro.run_report.v1",
//     "spans": [ { "id", "parent" (-1 for roots), "depth", "name",
//                  "start_ms", "wall_ms", "rss_delta_kb" } ],
//     "counters":   { "<name>": <integer>, ... },
//     "gauges":     { "<name>": <number>, ... },
//     "histograms": { "<name>": { "count", "sum", "min", "max",
//                                 "p50", "p90", "p99",
//                                 "buckets": [ { "index", "lo", "le",
//                                                "count" } ] } },
//     "sampler":    { "samples", "t_ms": [...], "rss_kb": [...],
//                     "utime_ms": [...], "stime_ms": [...],
//                     "minor_faults": [...], "major_faults": [...] }
//                   (present only when the resource sampler ran),
//     ... plus one top-level key per registered report section (e.g. the
//     pipeline's "fault" stage-health section); additive, so v1 consumers
//     that ignore unknown keys keep working
//   }
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace repro::obs {

/// Registers (or replaces) an extra top-level run-report section. `json`
/// must be a complete JSON value; it is emitted verbatim under `key`.
/// Thread-safe. Used by the pipeline to publish its fault/stage-health
/// section without obs depending on it.
void set_report_section(const std::string& key, std::string json);

/// Snapshot of the registered sections (key, json), insertion-ordered.
std::vector<std::pair<std::string, std::string>> report_sections();

/// Drops all registered sections (tests).
void clear_report_sections();

/// JSON run report from explicit snapshots.
std::string run_report_json(const std::vector<Span>& spans,
                            const MetricsSnapshot& metrics);

/// JSON run report of the global tracer + registry.
std::string run_report_json();

/// Per-stage timing table: one row per span, indented by tree depth, with
/// wall time, share of the enclosing root span, and RSS delta.
std::string span_table(const std::vector<Span>& spans);
std::string span_table();

/// Counter/gauge/histogram summary table (histograms show count and
/// p50/p90/p99).
std::string metrics_table(const MetricsSnapshot& metrics);
std::string metrics_table();

/// REPRO_TRACE_OUT when set, else "run_report.json".
std::string default_report_path();

/// Writes the global run report to `path` (parent directories created).
void write_run_report(const std::string& path);

/// Writes the global run report to default_report_path() when tracing is
/// enabled. Returns true if a report was written.
bool maybe_write_run_report();

}  // namespace repro::obs
