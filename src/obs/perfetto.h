// Chrome-trace-event / Perfetto JSON exporter for the flight recorder.
//
// trace_events_json() turns the tracer's span tree, the thread-pool flow
// events, and the resource sampler's time-series into one JSON object
// ({"traceEvents": [...], "displayTimeUnit": "ms"}) loadable in
// https://ui.perfetto.dev or chrome://tracing:
//   - every closed span becomes a complete ("ph":"X") slice on its
//     thread's track (ts/dur in microseconds, as the format requires);
//     spans still open at export time are emitted as unmatched "B" events
//     so they render as in-progress slices;
//   - each enqueue->run handoff becomes a flow-arrow pair ("ph":"s" on the
//     submitting thread, "ph":"f" with "bp":"e" on the worker) sharing the
//     flow id, drawn by the UI from the submitting span to the worker's
//     pool.task slice;
//   - every resource sample becomes counter events ("ph":"C") on the
//     sampler.* tracks (rss_mb, utime_ms, stime_ms, minor_faults,
//     major_faults);
//   - metadata events ("ph":"M") name the process and each thread track.
//
// The default output path is REPRO_TRACE_EVENTS when set, else a
// "trace.json" sibling of default_report_path() (so REPRO_TRACE_OUT=/d/r.json
// puts the trace at /d/trace.json).
#pragma once

#include <string>
#include <vector>

#include "obs/sampler.h"
#include "obs/trace.h"

namespace repro::obs {

/// Trace-event JSON from explicit snapshots (tests, tools).
std::string trace_events_json(const std::vector<Span>& spans,
                              const std::vector<FlowEvent>& flows,
                              const std::vector<ResourceSample>& samples);

/// Trace-event JSON of the global tracer + flow log + sampler.
std::string trace_events_json();

/// REPRO_TRACE_EVENTS when set, else "trace.json" next to
/// default_report_path().
std::string default_trace_path();

/// Writes the global trace to `path` (parent directories created).
void write_trace(const std::string& path);

/// Writes the global trace to default_trace_path() when tracing is
/// enabled. Returns true if a trace was written.
bool maybe_write_trace();

}  // namespace repro::obs
