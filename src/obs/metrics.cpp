#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "util/error.h"

namespace repro::obs {

namespace {

void atomic_update_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  require(!bounds_.empty(), "Histogram: need at least one bucket bound");
  require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: bounds must be strictly increasing");
}

std::vector<double> Histogram::default_latency_bounds_ms() {
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 1e5 * 0.5; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  return bounds;  // 0.001 ms .. 50,000 ms; +inf overflow above
}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // value <= bound
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_update_min(min_, value);
  atomic_update_max(max_, value);
}

double Histogram::percentile(double p) const noexcept {
  // Snapshot the bucket counts (relaxed; percentile is a statistical read).
  std::vector<std::uint64_t> counts(counts_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double min = min_.load(std::memory_order_relaxed);
  const double max = max_.load(std::memory_order_relaxed);

  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside bucket b, clamped to the observed extremes.
    double lo = b == 0 ? min : std::max(min, bounds_[b - 1]);
    double hi = b == bounds_.size() ? max : std::min(max, bounds_[b]);
    if (hi < lo) hi = lo;
    const double frac =
        counts[b] == 0
            ? 0.0
            : (rank - before) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count();
  out.sum = sum();
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  out.p50 = p50();
  out.p90 = p90();
  out.p99 = p99();
  out.buckets.reserve(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double bound = i < bounds_.size()
                             ? bounds_[i]
                             : std::numeric_limits<double>::infinity();
    out.buckets.emplace_back(bound,
                             counts_[i].load(std::memory_order_relaxed));
  }
  return out;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // less<> enables heterogeneous (string_view) lookup without allocating.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  // Bumped by reset() so cached handles know to re-resolve.
  std::atomic<std::uint64_t> generation{0};
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return *it->second;
  return *impl_->counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return *it->second;
  return *impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::default_latency_bounds_ms());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return *it->second;
  return *impl_->histograms
              .emplace(std::string(name),
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot out;
  out.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->counters.clear();
  impl_->gauges.clear();
  impl_->histograms.clear();
  // Release so a handle that observes the new generation also observes the
  // cleared maps when it re-resolves (the lookup takes the mutex anyway).
  impl_->generation.fetch_add(1, std::memory_order_release);
}

std::uint64_t MetricsRegistry::generation() const noexcept {
  return impl_->generation.load(std::memory_order_acquire);
}

Counter& CachedCounter::resolve() {
  const std::uint64_t gen = metrics().generation();
  if (generation_.load(std::memory_order_acquire) == gen) {
    // The acquire above pairs with the release below, so the pointer read
    // here is at least as new as the generation just observed.
    Counter* cached = counter_.load(std::memory_order_relaxed);
    if (cached != nullptr) return *cached;
  }
  // Stale (or first use): take the slow path once. The pointer is published
  // before the generation so a reader that sees the new generation also sees
  // the new pointer.
  Counter& fresh = metrics().counter(name_);
  counter_.store(&fresh, std::memory_order_relaxed);
  generation_.store(gen, std::memory_order_release);
  return fresh;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedTimer::ScopedTimer(std::string_view histogram_name) {
  if (!tracing_enabled()) return;
  histogram_ = &metrics().histogram(histogram_name);
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->record(static_cast<double>(now_ns() - start_ns_) / 1e6);
}

}  // namespace repro::obs
