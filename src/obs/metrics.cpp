#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace repro::obs {

namespace {

void atomic_update_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
  }
}

constexpr std::size_t kSubBuckets = std::size_t{1} << Histogram::kSubBucketBits;

/// Quantizes a millisecond value to 1 ns units; non-positive and NaN
/// values land at 0, values past the representable range saturate so
/// bit_width below never exceeds 63.
std::uint64_t to_units(double value_ms) noexcept {
  if (!(value_ms > 0.0)) return 0;
  const double units = value_ms / Histogram::kUnitMs;
  if (units >= 9.0e18) return std::uint64_t{9000000000000000000u};
  return static_cast<std::uint64_t>(units);
}

}  // namespace

std::size_t Histogram::bucket_index(double value_ms) noexcept {
  const std::uint64_t n = to_units(value_ms);
  // The first two octaves [0, 2*kSubBuckets) are exact unit buckets; above
  // that, 32 equal sub-buckets per power-of-two octave.
  if (n < 2 * kSubBuckets) return static_cast<std::size_t>(n);
  const int k = std::bit_width(n) - 1;  // n in [2^k, 2^(k+1))
  const int shift = k - static_cast<int>(kSubBucketBits);
  const std::uint64_t sub = n >> shift;  // in [kSubBuckets, 2*kSubBuckets)
  return static_cast<std::size_t>(shift + 1) * kSubBuckets +
         static_cast<std::size_t>(sub - kSubBuckets);
}

double Histogram::bucket_lower_ms(std::size_t index) noexcept {
  if (index < 2 * kSubBuckets) return static_cast<double>(index) * kUnitMs;
  const std::size_t shift = index / kSubBuckets - 1;
  const std::uint64_t sub = index % kSubBuckets + kSubBuckets;
  return static_cast<double>(sub) * static_cast<double>(std::uint64_t{1} << shift) *
         kUnitMs;
}

double Histogram::bucket_upper_ms(std::size_t index) noexcept {
  if (index < 2 * kSubBuckets) {
    return static_cast<double>(index + 1) * kUnitMs;
  }
  const std::size_t shift = index / kSubBuckets - 1;
  const std::uint64_t sub = index % kSubBuckets + kSubBuckets;
  return static_cast<double>(sub + 1) *
         static_cast<double>(std::uint64_t{1} << shift) * kUnitMs;
}

void Histogram::record(double value) noexcept {
  counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_update_min(min_, value);
  atomic_update_max(max_, value);
}

double Histogram::percentile(double p) const noexcept {
  return snapshot().percentile(p);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count();
  out.sum = sum();
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    out.buckets.push_back({static_cast<std::uint32_t>(i), bucket_lower_ms(i),
                           bucket_upper_ms(i), c});
  }
  out.p50 = out.percentile(50.0);
  out.p90 = out.percentile(90.0);
  out.p99 = out.percentile(99.0);
  return out;
}

double HistogramSnapshot::percentile(double p) const noexcept {
  std::uint64_t total = 0;
  for (const HistogramBucket& bucket : buckets) total += bucket.count;
  if (total == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (const HistogramBucket& bucket : buckets) {
    const double before = static_cast<double>(cumulative);
    cumulative += bucket.count;
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside the bucket, clamped to the observed extremes so
    // p0/p100 are exact and everything else stays within one bucket width.
    double lo = std::max(min, bucket.lo_ms);
    double hi = std::min(max, bucket.hi_ms);
    if (hi < lo) hi = lo;
    const double frac = (rank - before) / static_cast<double>(bucket.count);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return max;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  // Merge-join the two index-sorted sparse bucket lists; counts add
  // per index, so the result is bit-exact regardless of which shard
  // recorded which value.
  std::vector<HistogramBucket> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].index < other.buckets[b].index)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() ||
               other.buckets[b].index < buckets[a].index) {
      merged.push_back(other.buckets[b++]);
    } else {
      HistogramBucket combined = buckets[a++];
      combined.count += other.buckets[b++].count;
      merged.push_back(combined);
    }
  }
  buckets = std::move(merged);

  if (other.count > 0) {
    min = count == 0 ? other.min : std::min(min, other.min);
    max = count == 0 ? other.max : std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  p50 = percentile(50.0);
  p90 = percentile(90.0);
  p99 = percentile(99.0);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // less<> enables heterogeneous (string_view) lookup without allocating.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  // Bumped by reset() so cached handles know to re-resolve.
  std::atomic<std::uint64_t> generation{0};
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->counters.find(name);
  if (it != impl_->counters.end()) return *it->second;
  return *impl_->counters.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->gauges.find(name);
  if (it != impl_->gauges.end()) return *it->second;
  return *impl_->gauges.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->histograms.find(name);
  if (it != impl_->histograms.end()) return *it->second;
  return *impl_->histograms
              .emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot out;
  out.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->counters.clear();
  impl_->gauges.clear();
  impl_->histograms.clear();
  // Release so a handle that observes the new generation also observes the
  // cleared maps when it re-resolves (the lookup takes the mutex anyway).
  impl_->generation.fetch_add(1, std::memory_order_release);
}

std::uint64_t MetricsRegistry::generation() const noexcept {
  return impl_->generation.load(std::memory_order_acquire);
}

Counter& CachedCounter::resolve() {
  const std::uint64_t gen = metrics().generation();
  if (generation_.load(std::memory_order_acquire) == gen) {
    // The acquire above pairs with the release below, so the pointer read
    // here is at least as new as the generation just observed.
    Counter* cached = counter_.load(std::memory_order_relaxed);
    if (cached != nullptr) return *cached;
  }
  // Stale (or first use): take the slow path once. The pointer is published
  // before the generation so a reader that sees the new generation also sees
  // the new pointer.
  Counter& fresh = metrics().counter(name_);
  counter_.store(&fresh, std::memory_order_relaxed);
  generation_.store(gen, std::memory_order_release);
  return fresh;
}

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedTimer::ScopedTimer(std::string_view histogram_name) {
  if (!tracing_enabled()) return;
  histogram_ = &metrics().histogram(histogram_name);
  start_ns_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->record(static_cast<double>(now_ns() - start_ns_) / 1e6);
}

}  // namespace repro::obs
