// Process-global metrics for the reproduction pipeline: named counters,
// gauges, and HDR-style log-linear histograms with percentile accessors.
//
// Counters are always on (stage code does cheap bulk adds at stage
// boundaries), so a run's domain numbers -- IPs scanned, certs matched per
// hypergiant, vantage points dropped by the Appendix-A filters, clusters per
// xi -- are available whether or not tracing is enabled. Timing helpers
// (ScopedTimer) are gated on the tracing toggle so the disabled path never
// reads a clock.
//
// Histogram bucket scheme (fixed for every histogram in the process, which
// is what makes snapshots mergeable):
//   - values are milliseconds, quantized to 1 ns units (n = value / 1e-6);
//   - n < 64 falls in exact unit buckets [n, n+1);
//   - larger n falls in one of 32 equal sub-buckets of its octave
//     [2^k, 2^(k+1)), i.e. a log-linear layout with ~3% relative width;
//   - 1920 buckets cover the whole uint64 unit range (sub-ns .. ~213 days).
// Because the boundaries are a pure function of the bucket index, snapshots
// taken in different threads or processes can be merged by adding counts
// per index (HistogramSnapshot::merge) -- the substrate for sharded runs
// and the report service's p50/p99 queries.
//
// All metric objects are thread-safe and live for the process lifetime;
// references returned by the registry stay valid forever, so hot paths can
// look a metric up once and keep the reference.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace repro::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// One occupied bucket of a snapshot. `index` addresses the global
/// log-linear layout; lo_ms/hi_ms are the reconstructed bounds
/// (value range is [lo_ms, hi_ms)).
struct HistogramBucket {
  std::uint32_t index = 0;
  double lo_ms = 0.0;
  double hi_ms = 0.0;
  std::uint64_t count = 0;
};

/// Point-in-time copy of a histogram for export and cross-shard merging.
/// Only occupied buckets are stored, sorted by index.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<HistogramBucket> buckets;

  /// Estimated value at percentile `p` in [0, 100], monotone in p and
  /// within one bucket width of the exact value; 0 when empty.
  double percentile(double p) const noexcept;

  /// Folds `other` into this snapshot: bucket counts add per index
  /// (bit-exact -- boundaries are global so no re-binning happens), count
  /// and min/max combine exactly, percentiles are recomputed. `sum` is a
  /// float accumulation and is not guaranteed bit-exact across merge
  /// orders. Merging shard snapshots recorded from a partition of one
  /// value stream yields the same buckets/count/min/max as a single
  /// histogram fed the whole stream.
  void merge(const HistogramSnapshot& other);
};

/// Log-linear histogram with atomically updated dense bucket counts. All
/// histograms share the same fixed bucket layout (see file comment), so
/// there is nothing to configure at construction and snapshots from
/// different instances, threads, or processes are mergeable.
class Histogram {
 public:
  static constexpr std::size_t kSubBucketBits = 5;  // 32 sub-buckets/octave
  static constexpr std::size_t kBucketCount = 1920;
  static constexpr double kUnitMs = 1e-6;  // 1 ns per unit

  Histogram() = default;

  /// Index of the bucket containing `value_ms` (<= 0, NaN land in bucket 0).
  static std::size_t bucket_index(double value_ms) noexcept;
  /// Inclusive lower / exclusive upper bound of bucket `index`, in ms.
  static double bucket_lower_ms(std::size_t index) noexcept;
  static double bucket_upper_ms(std::size_t index) noexcept;

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Estimated value at percentile `p` in [0, 100]; 0 when empty.
  double percentile(double p) const noexcept;
  double p50() const noexcept { return percentile(50.0); }
  double p90() const noexcept { return percentile(90.0); }
  double p99() const noexcept { return percentile(99.0); }

  HistogramSnapshot snapshot() const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Everything the registry holds, copied for export.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Thread-safe name -> metric registry. Lookup is a mutex-guarded map find
/// (heterogeneous, so string_view keys do not allocate); creation happens on
/// first use. Returned references are stable for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Drops every metric (tests). Outstanding references go stale; a
  /// CachedCounter notices via generation() and re-resolves.
  void reset();

  /// Bumped by every reset(); lets cached handles detect staleness.
  std::uint64_t generation() const noexcept;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

/// Shorthand for the global registry.
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

/// Counter handle that caches the registry lookup, for per-call hot paths
/// (e.g. one count per routing-table computation) where a mutex-guarded map
/// find per event would show up in benchmarks. Typically a function-local
/// static. Stays correct across MetricsRegistry::reset(): the handle
/// re-resolves when the registry generation changes.
class CachedCounter {
 public:
  explicit CachedCounter(std::string_view name) : name_(name) {}

  void add(std::uint64_t n = 1) { resolve().add(n); }

  CachedCounter(const CachedCounter&) = delete;
  CachedCounter& operator=(const CachedCounter&) = delete;

 private:
  Counter& resolve();

  std::string name_;
  std::atomic<Counter*> counter_{nullptr};
  // ~0 never matches a real generation, so first use takes the slow path.
  std::atomic<std::uint64_t> generation_{~std::uint64_t{0}};
};

/// Records the elapsed milliseconds of its scope into a histogram, but only
/// when tracing is enabled -- the disabled path is one atomic load.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;  // null when tracing is disabled
  std::uint64_t start_ns_ = 0;
};

}  // namespace repro::obs
