// Process-global metrics for the reproduction pipeline: named counters,
// gauges, and fixed-bucket histograms with percentile accessors.
//
// Counters are always on (stage code does cheap bulk adds at stage
// boundaries), so a run's domain numbers -- IPs scanned, certs matched per
// hypergiant, vantage points dropped by the Appendix-A filters, clusters per
// xi -- are available whether or not tracing is enabled. Timing helpers
// (ScopedTimer) are gated on the tracing toggle so the disabled path never
// reads a clock.
//
// All metric objects are thread-safe and live for the process lifetime;
// references returned by the registry stay valid forever, so hot paths can
// look a metric up once and keep the reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace repro::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram for export.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// (upper bound, count) per bucket; the final bucket's bound is +infinity.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

/// Fixed-bucket histogram. Bucket upper bounds are set at construction; an
/// implicit overflow bucket catches everything above the last bound.
/// Percentiles are estimated by linear interpolation inside the containing
/// bucket, clamped to the observed min/max, so they are exact at the
/// extremes and within one bucket width elsewhere.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  /// Log-spaced 1-2-5 bounds from 1 microsecond to 100 seconds, in ms.
  /// The default for latency histograms (including the span.* family).
  static std::vector<double> default_latency_bounds_ms();

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Estimated value at percentile `p` in [0, 100]; 0 when empty.
  double percentile(double p) const noexcept;
  double p50() const noexcept { return percentile(50.0); }
  double p90() const noexcept { return percentile(90.0); }
  double p99() const noexcept { return percentile(99.0); }

  HistogramSnapshot snapshot() const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Everything the registry holds, copied for export.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Thread-safe name -> metric registry. Lookup is a mutex-guarded map find
/// (heterogeneous, so string_view keys do not allocate); creation happens on
/// first use. Returned references are stable for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Histogram with the default latency bounds.
  Histogram& histogram(std::string_view name);
  /// Histogram with explicit bounds; the bounds of an existing histogram
  /// with this name are left unchanged.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  /// Drops every metric (tests). Outstanding references go stale; a
  /// CachedCounter notices via generation() and re-resolves.
  void reset();

  /// Bumped by every reset(); lets cached handles detect staleness.
  std::uint64_t generation() const noexcept;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

/// Shorthand for the global registry.
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

/// Counter handle that caches the registry lookup, for per-call hot paths
/// (e.g. one count per routing-table computation) where a mutex-guarded map
/// find per event would show up in benchmarks. Typically a function-local
/// static. Stays correct across MetricsRegistry::reset(): the handle
/// re-resolves when the registry generation changes.
class CachedCounter {
 public:
  explicit CachedCounter(std::string_view name) : name_(name) {}

  void add(std::uint64_t n = 1) { resolve().add(n); }

  CachedCounter(const CachedCounter&) = delete;
  CachedCounter& operator=(const CachedCounter&) = delete;

 private:
  Counter& resolve();

  std::string name_;
  std::atomic<Counter*> counter_{nullptr};
  // ~0 never matches a real generation, so first use takes the slow path.
  std::atomic<std::uint64_t> generation_{~std::uint64_t{0}};
};

/// Records the elapsed milliseconds of its scope into a histogram, but only
/// when tracing is enabled -- the disabled path is one atomic load.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;  // null when tracing is disabled
  std::uint64_t start_ns_ = 0;
};

}  // namespace repro::obs
