#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"

namespace repro::obs {

namespace {

using Clock = std::chrono::steady_clock;

bool env_trace_enabled() {
  const char* value = std::getenv("REPRO_TRACE");
  if (value == nullptr) return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{env_trace_enabled()};
  return enabled;
}

}  // namespace

bool tracing_enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_tracing(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

long current_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  long rss = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(file);
  return rss;
#else
  return 0;
#endif
}

struct Tracer::Impl {
  mutable std::mutex mutex;
  std::vector<Span> spans;
  std::vector<long> start_rss_kb;  // parallel to spans
  Clock::time_point epoch = Clock::now();
  std::uint64_t generation = 0;  // bumped on reset to invalidate open spans
};

namespace {

/// Per-thread stack of (generation, span id) for nesting.
struct OpenSpan {
  std::uint64_t generation;
  std::size_t id;
};

thread_local std::vector<OpenSpan> t_open_spans;

}  // namespace

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

namespace {

/// Span ids handed to ScopedSpan encode the tracer generation so a span
/// opened before a reset() cannot close an unrelated span after it.
constexpr std::size_t kGenStride = std::size_t{1} << 40;

}  // namespace

std::size_t Tracer::begin_span(std::string_view name) {
  if (!tracing_enabled()) return kNoSpan;
  const long rss = current_rss_kb();

  std::lock_guard<std::mutex> lock(impl_->mutex);
  Span span;
  span.id = impl_->spans.size();
  // Parent: the innermost span this thread opened in the current generation.
  while (!t_open_spans.empty() &&
         t_open_spans.back().generation != impl_->generation) {
    t_open_spans.pop_back();
  }
  if (!t_open_spans.empty()) {
    span.parent = t_open_spans.back().id;
    span.depth = impl_->spans[span.parent].depth + 1;
  }
  span.name = std::string(name);
  span.start_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
          .count();
  impl_->spans.push_back(span);
  impl_->start_rss_kb.push_back(rss);
  t_open_spans.push_back({impl_->generation, span.id});
  return impl_->generation * kGenStride + span.id;
}

void Tracer::end_span(std::size_t id) {
  if (id == kNoSpan) return;
  const long rss = current_rss_kb();
  double wall_ms = 0.0;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (id / kGenStride != impl_->generation) return;  // reset since begin
    id %= kGenStride;
    if (id >= impl_->spans.size()) return;
    while (!t_open_spans.empty() &&
           (t_open_spans.back().generation != impl_->generation ||
            t_open_spans.back().id >= id)) {
      t_open_spans.pop_back();
    }
    Span& span = impl_->spans[id];
    if (span.closed) return;
    const double end_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
            .count();
    span.wall_ms = end_ms - span.start_ms;
    if (rss != 0 && impl_->start_rss_kb[id] != 0) {
      span.rss_delta_kb = rss - impl_->start_rss_kb[id];
    }
    span.closed = true;
    wall_ms = span.wall_ms;
    name = span.name;
  }
  // Span durations feed the histogram API so per-span p50/p99 are queryable.
  metrics().histogram("span." + name).record(wall_ms);
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->spans;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->spans.clear();
  impl_->start_rss_kb.clear();
  impl_->epoch = Clock::now();
  ++impl_->generation;
}

}  // namespace repro::obs
