#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace repro::obs {

namespace {

using Clock = std::chrono::steady_clock;

bool env_trace_enabled() {
  const char* value = std::getenv("REPRO_TRACE");
  if (value == nullptr) return false;
  return std::strcmp(value, "0") != 0 && std::strcmp(value, "") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{env_trace_enabled()};
  return enabled;
}

}  // namespace

bool tracing_enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_tracing(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

long current_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  long rss = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss = std::strtol(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(file);
  return rss;
#else
  return 0;
#endif
}

namespace {

/// Submitting-thread context parked between capture (enqueue) and adopt
/// (task start on a worker), keyed by the flow id that doubles as the hook
/// token.
struct PendingContext {
  std::uint64_t generation = 0;
  std::size_t parent = kNoSpan;
};

}  // namespace

struct Tracer::Impl {
  mutable std::mutex mutex;
  std::vector<Span> spans;
  std::vector<long> start_rss_kb;  // parallel to spans
  std::vector<FlowEvent> flows;
  std::map<std::uint64_t, PendingContext> pending;  // keyed by flow id
  Clock::time_point epoch = Clock::now();
  std::uint64_t generation = 0;   // bumped on reset to invalidate open spans
  std::uint64_t next_flow = 1;    // 0 is the "no context" token
};

namespace {

/// Per-thread stack of (generation, span id) for nesting.
struct OpenSpan {
  std::uint64_t generation;
  std::size_t id;
};

thread_local std::vector<OpenSpan> t_open_spans;

/// Stable small per-thread track id, assigned on first use.
std::atomic<int> g_next_tid{0};
thread_local int t_tid = -1;

}  // namespace

int Tracer::current_tid() noexcept {
  if (t_tid < 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

Tracer::Tracer() : impl_(new Impl) {}

namespace {

/// Span ids handed to ScopedSpan encode the tracer generation so a span
/// opened before a reset() cannot close an unrelated span after it.
constexpr std::size_t kGenStride = std::size_t{1} << 40;

/// Thread-pool task hooks: capture the submitting thread's span context at
/// enqueue, re-parent the task's spans under it on the worker. The token is
/// the flow id itself (no allocation); 0 / nullptr means "no context".
void* hook_on_submit() noexcept {
  const std::uint64_t token = Tracer::instance().capture_task_context();
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(token));
}

void* hook_on_run_begin(void* token) noexcept {
  const std::size_t span = Tracer::instance().adopt_task_context(
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(token)));
  if (span == kNoSpan) return nullptr;
  // +1 so a valid span id is never the null scope.
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(span + 1));
}

void hook_on_run_end(void* /*token*/, void* scope) noexcept {
  if (scope == nullptr) return;
  Tracer::instance().end_span(
      static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(scope)) - 1);
}

/// Installed at load time from this translation unit; every binary that
/// traces links it, so pool tasks are wrapped before any fan-out runs.
struct TaskHookInstaller {
  TaskHookInstaller() {
    set_task_hooks({&hook_on_submit, &hook_on_run_begin, &hook_on_run_end});
  }
};
const TaskHookInstaller g_task_hook_installer;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::size_t Tracer::begin_span(std::string_view name) {
  if (!tracing_enabled()) return kNoSpan;
  const long rss = current_rss_kb();
  const int tid = current_tid();

  std::lock_guard<std::mutex> lock(impl_->mutex);
  Span span;
  span.id = impl_->spans.size();
  // Parent: the innermost span this thread opened in the current generation.
  while (!t_open_spans.empty() &&
         t_open_spans.back().generation != impl_->generation) {
    t_open_spans.pop_back();
  }
  if (!t_open_spans.empty()) {
    span.parent = t_open_spans.back().id;
    span.depth = impl_->spans[span.parent].depth + 1;
  }
  span.tid = tid;
  span.name = std::string(name);
  span.start_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
          .count();
  impl_->spans.push_back(span);
  impl_->start_rss_kb.push_back(rss);
  t_open_spans.push_back({impl_->generation, span.id});
  return impl_->generation * kGenStride + span.id;
}

void Tracer::end_span(std::size_t id) {
  if (id == kNoSpan) return;
  const long rss = current_rss_kb();
  double wall_ms = 0.0;
  std::string name;
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (id / kGenStride != impl_->generation ||
        id % kGenStride >= impl_->spans.size()) {
      // The tracer was reset while this span was open: its slot is gone and
      // the id must not be reused against the new generation's spans.
      // Checked no-op, surfaced through the trace.dropped_spans counter.
      while (!t_open_spans.empty() &&
             t_open_spans.back().generation != impl_->generation) {
        t_open_spans.pop_back();
      }
      dropped = true;
    } else {
      id %= kGenStride;
      while (!t_open_spans.empty() &&
             (t_open_spans.back().generation != impl_->generation ||
              t_open_spans.back().id >= id)) {
        t_open_spans.pop_back();
      }
      Span& span = impl_->spans[id];
      if (span.closed) return;
      const double end_ms =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    impl_->epoch)
              .count();
      span.wall_ms = end_ms - span.start_ms;
      if (rss != 0 && impl_->start_rss_kb[id] != 0) {
        span.rss_delta_kb = rss - impl_->start_rss_kb[id];
      }
      span.closed = true;
      wall_ms = span.wall_ms;
      name = span.name;
    }
  }
  if (dropped) {
    metrics().counter("trace.dropped_spans").add(1);
    return;
  }
  // Span durations feed the histogram API so per-span p50/p99 are queryable.
  metrics().histogram("span." + name).record(wall_ms);
}

std::uint64_t Tracer::capture_task_context() {
  if (!tracing_enabled()) return 0;
  const int tid = current_tid();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  // Only a live open span is worth propagating; without one the worker's
  // spans become roots exactly as before.
  while (!t_open_spans.empty() &&
         t_open_spans.back().generation != impl_->generation) {
    t_open_spans.pop_back();
  }
  if (t_open_spans.empty()) return 0;
  const std::uint64_t token = impl_->next_flow++;
  impl_->pending[token] = {impl_->generation, t_open_spans.back().id};
  FlowEvent flow;
  flow.id = token;
  flow.ts_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
          .count();
  flow.tid = tid;
  flow.phase = 's';
  flow.span = t_open_spans.back().id;
  impl_->flows.push_back(flow);
  return token;
}

std::size_t Tracer::adopt_task_context(std::uint64_t token) {
  if (token == 0) return kNoSpan;
  const long rss = current_rss_kb();
  const int tid = current_tid();
  std::unique_lock<std::mutex> lock(impl_->mutex);
  const auto it = impl_->pending.find(token);
  if (it == impl_->pending.end() ||
      it->second.generation != impl_->generation) {
    // Reset since enqueue: the submitting context is gone. Checked no-op.
    if (it != impl_->pending.end()) impl_->pending.erase(it);
    lock.unlock();
    metrics().counter("trace.dropped_spans").add(1);
    return kNoSpan;
  }
  const std::size_t parent = it->second.parent;
  impl_->pending.erase(it);

  Span span;
  span.id = impl_->spans.size();
  span.parent = parent;
  span.depth = impl_->spans[parent].depth + 1;
  span.tid = tid;
  span.name = "pool.task";
  span.start_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
          .count();
  impl_->spans.push_back(span);
  impl_->start_rss_kb.push_back(rss);
  t_open_spans.push_back({impl_->generation, span.id});

  FlowEvent flow;
  flow.id = token;
  flow.ts_ms = span.start_ms;
  flow.tid = tid;
  flow.phase = 'f';
  flow.span = span.id;
  impl_->flows.push_back(flow);
  return impl_->generation * kGenStride + span.id;
}

double Tracer::now_ms() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return std::chrono::duration<double, std::milli>(Clock::now() - impl_->epoch)
      .count();
}

std::vector<Span> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->spans;
}

std::vector<FlowEvent> Tracer::flow_events() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->flows;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->spans.clear();
  impl_->start_rss_kb.clear();
  impl_->flows.clear();
  impl_->pending.clear();
  impl_->epoch = Clock::now();
  ++impl_->generation;
}

}  // namespace repro::obs
