// Bench-trend analysis shared by the repro-bench CLI and scripts/check.sh:
// parses BENCH_*.json lines (one JSON object per line, as emitted by
// bench/bench_common.h) out of a JSONL history file, diffs two runs field
// by field, and renders a per-field delta report with a regression verdict
// -- so the perf gate can name *which* phase regressed instead of failing
// opaquely on one total.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace repro::obs {

/// One parsed BENCH_*.json line. Numeric top-level fields land in
/// `numbers`, string fields in `strings`; nested values (the "stages"
/// health object) are ignored for trend purposes.
struct BenchRecord {
  std::string bench;
  std::string scale;
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};

/// Parses one BENCH json line; throws repro::ParseError on malformed input.
BenchRecord parse_bench_line(std::string_view line);

/// Parses a JSONL history (one record per line, blank lines skipped).
/// Malformed lines throw; history files are machine-written.
std::vector<BenchRecord> parse_history(std::string_view text);

/// True for fields measured in time units, i.e. candidates for a
/// slower-is-worse regression gate: "seconds" and fields ending in
/// "_seconds", "_ms", or "_ns_op".
bool is_time_field(std::string_view name);

/// Delta of one numeric field between two runs.
struct FieldDelta {
  std::string field;
  double before = 0.0;
  double after = 0.0;
  double ratio = 1.0;     // after / before; 1 when before == 0
  bool time_field = false;
  bool regressed = false; // time field over the gate (and gated, if a
                          // gate-field subset was given)
};

/// Field-by-field comparison of two runs of the same bench.
struct TrendDiff {
  std::string bench;
  double gate = 0.0;  // ratio above which a gated time field regresses
  std::vector<FieldDelta> deltas;              // sorted by field name
  std::vector<std::string> regressed_fields;   // subset of deltas
  std::vector<std::string> missing_fields;     // in before, not in after

  bool regressed() const noexcept { return !regressed_fields.empty(); }
};

/// Compares the numeric fields the two records share. A time field whose
/// after/before ratio exceeds `gate` counts as regressed; when
/// `gate_fields` is non-empty only those fields can regress (the others
/// still appear in `deltas` for context).
TrendDiff diff_records(const BenchRecord& before, const BenchRecord& after,
                       double gate,
                       const std::vector<std::string>& gate_fields = {});

/// Human-readable rendering of a diff: one row per field with before,
/// after, the percent delta, and a verdict column naming regressions.
std::string render_diff(const TrendDiff& diff);

/// Retention cap for JSONL history files from REPRO_HISTORY_MAX_LINES:
/// the number of newest lines to keep, or 0 (unset / unparsable / "0")
/// for unbounded. Every HISTORY.jsonl appender (bench_common.h footers,
/// `repro-bench record`) feeds this to repro::append_file_capped.
std::size_t history_max_lines_from_env();

}  // namespace repro::obs
