#include "obs/trend.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace repro::obs {

BenchRecord parse_bench_line(std::string_view line) {
  const JsonValue value = parse_json(line);
  BenchRecord record;
  for (const auto& [key, field] : value.object()) {
    if (field.is_number()) {
      record.numbers[key] = field.number();
    } else if (field.is_string()) {
      record.strings[key] = field.str();
      if (key == "bench") record.bench = field.str();
      if (key == "scale") record.scale = field.str();
    }
    // Nested values (the "stages" health object) carry no trend numbers.
  }
  return record;
}

std::vector<BenchRecord> parse_history(std::string_view text) {
  std::vector<BenchRecord> records;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(begin, end - begin);
    begin = end + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    records.push_back(parse_bench_line(line));
  }
  return records;
}

bool is_time_field(std::string_view name) {
  const auto ends_with = [name](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  return name == "seconds" || ends_with("_seconds") || ends_with("_ms") ||
         ends_with("_ns_op");
}

TrendDiff diff_records(const BenchRecord& before, const BenchRecord& after,
                       double gate,
                       const std::vector<std::string>& gate_fields) {
  TrendDiff diff;
  diff.bench = after.bench.empty() ? before.bench : after.bench;
  diff.gate = gate;
  const auto gated = [&gate_fields](const std::string& field) {
    return gate_fields.empty() ||
           std::find(gate_fields.begin(), gate_fields.end(), field) !=
               gate_fields.end();
  };
  for (const auto& [field, after_value] : after.numbers) {
    const auto it = before.numbers.find(field);
    if (it == before.numbers.end()) continue;  // new field: nothing to diff
    FieldDelta delta;
    delta.field = field;
    delta.before = it->second;
    delta.after = after_value;
    delta.ratio = it->second > 0.0 ? after_value / it->second : 1.0;
    // unix_ms is a wall-clock timestamp, not a duration: never gate it.
    delta.time_field = field != "unix_ms" && is_time_field(field);
    delta.regressed = delta.time_field && gated(field) &&
                      std::isfinite(delta.ratio) && delta.ratio > gate;
    if (delta.regressed) diff.regressed_fields.push_back(field);
    diff.deltas.push_back(std::move(delta));
  }
  for (const auto& [field, unused] : before.numbers) {
    (void)unused;
    if (after.numbers.find(field) == after.numbers.end()) {
      diff.missing_fields.push_back(field);
    }
  }
  return diff;
}

std::string render_diff(const TrendDiff& diff) {
  TextTable table({"field", "before", "after", "delta", "verdict"});
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);
  table.set_align(3, Align::kRight);
  for (const FieldDelta& delta : diff.deltas) {
    std::string verdict;
    if (!delta.time_field) {
      verdict = "";
    } else if (delta.regressed) {
      verdict = "REGRESSED";
    } else if (delta.ratio < 1.0) {
      verdict = "faster";
    } else {
      verdict = "ok";
    }
    table.add_row({delta.field, format_fixed(delta.before, 6),
                   format_fixed(delta.after, 6),
                   format_percent(delta.ratio - 1.0, 1), verdict});
  }
  std::string out = "bench: " + diff.bench + " (gate " +
                    format_fixed(diff.gate, 2) + "x on time fields)\n" +
                    table.render();
  for (const std::string& field : diff.missing_fields) {
    out += "note: field '" + field + "' missing from the newer run\n";
  }
  if (diff.regressed()) {
    out += "verdict: REGRESSION in";
    for (const std::string& field : diff.regressed_fields) out += " " + field;
    out += "\n";
  } else {
    out += "verdict: ok\n";
  }
  return out;
}

std::size_t history_max_lines_from_env() {
  const char* text = std::getenv("REPRO_HISTORY_MAX_LINES");
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;  // unparsable -> unbounded
  return static_cast<std::size_t>(value);
}

}  // namespace repro::obs
