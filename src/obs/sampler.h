// Background resource sampler: a thread that periodically reads
// /proc/self/statm and getrusage() into a time-series of resource samples
// (RSS, user/system CPU time, minor/major page faults) on the tracer's
// timeline. The Perfetto exporter turns the series into counter tracks and
// maybe_write_run_report() embeds it as the "sampler" report section.
//
// Configuration: REPRO_SAMPLE_HZ sets the sampling rate; "0" disables the
// sampler entirely. When the variable is unset, maybe_start_from_env()
// starts the sampler at a default rate only when tracing is enabled, so
// REPRO_TRACE=1 runs always carry resource counter tracks while untraced
// runs pay nothing.
#pragma once

#include <cstdint>
#include <vector>

namespace repro::obs {

/// One reading. `t_ms` is milliseconds since the tracer epoch (same
/// timeline as Span::start_ms so counter tracks align with slices).
struct ResourceSample {
  double t_ms = 0.0;
  long rss_kb = 0;        // resident set, from /proc/self/statm
  double utime_ms = 0.0;  // cumulative user CPU, from getrusage
  double stime_ms = 0.0;  // cumulative system CPU
  long minor_faults = 0;  // cumulative, ru_minflt
  long major_faults = 0;  // cumulative, ru_majflt
};

/// Process-global sampler thread. start()/stop() are idempotent and
/// thread-safe; samples() may be read while sampling is live.
class ResourceSampler {
 public:
  static ResourceSampler& instance();

  /// Starts the background thread at `hz` samples per second (clamped to
  /// [0.1, 1000]). No-op when already running. Takes one sample
  /// immediately so even a very short run has a first point.
  void start(double hz);

  /// Stops and joins the thread, taking one final sample first so the
  /// series covers the full run. No-op when not running.
  void stop();

  bool running() const noexcept;

  /// REPRO_SAMPLE_HZ when set ("0" disables); otherwise `default_hz`, but
  /// only when tracing is enabled. Returns true when the sampler ends up
  /// running.
  bool maybe_start_from_env(double default_hz = 10.0);

  /// Copy of all samples recorded since the last reset.
  std::vector<ResourceSample> samples() const;

  /// Drops recorded samples (tests). Does not stop a running thread.
  void reset();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

 private:
  ResourceSampler();
  struct Impl;
  Impl* impl_;
};

/// Shorthand for the global sampler.
inline ResourceSampler& sampler() { return ResourceSampler::instance(); }

/// Reads one sample right now (also used internally by the thread).
ResourceSample read_resource_sample() noexcept;

}  // namespace repro::obs
