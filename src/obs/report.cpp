#include "obs/report.h"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "obs/json.h"
#include "obs/sampler.h"
#include "util/strings.h"
#include "util/table.h"

namespace repro::obs {

namespace {

std::mutex& section_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<std::pair<std::string, std::string>>& section_store() {
  static std::vector<std::pair<std::string, std::string>> sections;
  return sections;
}

void append_span_json(std::string& out, const Span& span) {
  out += "{\"id\":" + std::to_string(span.id);
  out += ",\"parent\":";
  out += span.parent == kNoSpan ? "-1" : std::to_string(span.parent);
  out += ",\"depth\":" + std::to_string(span.depth);
  out += ",\"name\":\"" + json_escape(span.name) + "\"";
  out += ",\"start_ms\":" + json_number(span.start_ms);
  out += ",\"wall_ms\":" + json_number(span.wall_ms);
  out += ",\"rss_delta_kb\":" + std::to_string(span.rss_delta_kb);
  out += "}";
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + json_number(h.sum);
  out += ",\"min\":" + json_number(h.min);
  out += ",\"max\":" + json_number(h.max);
  out += ",\"p50\":" + json_number(h.p50);
  out += ",\"p90\":" + json_number(h.p90);
  out += ",\"p99\":" + json_number(h.p99);
  out += ",\"buckets\":[";
  bool first = true;
  for (const HistogramBucket& bucket : h.buckets) {
    if (!first) out += ",";
    first = false;
    out += "{\"index\":" + std::to_string(bucket.index) +
           ",\"lo\":" + json_number(bucket.lo_ms) +
           ",\"le\":" + json_number(bucket.hi_ms) +
           ",\"count\":" + std::to_string(bucket.count) + "}";
  }
  out += "]}";
}

/// "sampler" report section: the resource time-series as parallel arrays
/// (compact for long runs, and trivially plottable).
std::string sampler_section_json(const std::vector<ResourceSample>& samples) {
  std::string t_ms = "[";
  std::string rss_kb = "[";
  std::string utime_ms = "[";
  std::string stime_ms = "[";
  std::string minor_faults = "[";
  std::string major_faults = "[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const char* separator = i == 0 ? "" : ",";
    const ResourceSample& sample = samples[i];
    t_ms += separator + json_number(sample.t_ms);
    rss_kb += separator + std::to_string(sample.rss_kb);
    utime_ms += separator + json_number(sample.utime_ms);
    stime_ms += separator + json_number(sample.stime_ms);
    minor_faults += separator + std::to_string(sample.minor_faults);
    major_faults += separator + std::to_string(sample.major_faults);
  }
  return "{\"samples\":" + std::to_string(samples.size()) +
         ",\"t_ms\":" + t_ms + "],\"rss_kb\":" + rss_kb +
         "],\"utime_ms\":" + utime_ms + "],\"stime_ms\":" + stime_ms +
         "],\"minor_faults\":" + minor_faults +
         "],\"major_faults\":" + major_faults + "]}";
}

}  // namespace

void set_report_section(const std::string& key, std::string json) {
  const std::lock_guard<std::mutex> lock(section_mutex());
  for (auto& [existing, value] : section_store()) {
    if (existing == key) {
      value = std::move(json);
      return;
    }
  }
  section_store().emplace_back(key, std::move(json));
}

std::vector<std::pair<std::string, std::string>> report_sections() {
  const std::lock_guard<std::mutex> lock(section_mutex());
  return section_store();
}

void clear_report_sections() {
  const std::lock_guard<std::mutex> lock(section_mutex());
  section_store().clear();
}

std::string run_report_json(const std::vector<Span>& spans,
                            const MetricsSnapshot& metrics) {
  std::string out = "{\"schema\":\"repro.run_report.v1\",\"spans\":[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ",";
    append_span_json(out, spans[i]);
  }
  out += "],\"counters\":{";
  for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(metrics.counters[i].first) +
           "\":" + std::to_string(metrics.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < metrics.gauges.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(metrics.gauges[i].first) +
           "\":" + json_number(metrics.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(metrics.histograms[i].first) + "\":";
    append_histogram_json(out, metrics.histograms[i].second);
  }
  out += "}";
  for (const auto& [key, json] : report_sections()) {
    out += ",\"" + json_escape(key) + "\":" + json;
  }
  out += "}";
  return out;
}

std::string run_report_json() {
  return run_report_json(tracer().spans(),
                         MetricsRegistry::instance().snapshot());
}

std::string span_table(const std::vector<Span>& spans) {
  TextTable table({"span", "wall ms", "% of root", "rss delta kb"});
  table.set_align(1, Align::kRight);
  table.set_align(2, Align::kRight);
  table.set_align(3, Align::kRight);

  // Wall time of the root each span belongs to, for the share column.
  std::vector<double> root_wall(spans.size(), 0.0);
  for (const Span& span : spans) {
    root_wall[span.id] = span.parent == kNoSpan ? span.wall_ms
                                                : root_wall[span.parent];
  }
  for (const Span& span : spans) {
    std::string share = "-";
    if (span.closed && root_wall[span.id] > 0.0) {
      share = format_percent(span.wall_ms / root_wall[span.id], 1);
    }
    table.add_row({std::string(2 * static_cast<std::size_t>(span.depth), ' ') +
                       span.name,
                   span.closed ? format_fixed(span.wall_ms, 2) : "(open)",
                   share, std::to_string(span.rss_delta_kb)});
  }
  return table.render();
}

std::string span_table() { return span_table(tracer().spans()); }

std::string metrics_table(const MetricsSnapshot& metrics) {
  TextTable table({"metric", "kind", "value", "p50 ms", "p90 ms", "p99 ms"});
  for (std::size_t column = 2; column < 6; ++column) {
    table.set_align(column, Align::kRight);
  }
  for (const auto& [name, value] : metrics.counters) {
    table.add_row({name, "counter", with_commas(static_cast<long long>(value)),
                   "", "", ""});
  }
  for (const auto& [name, value] : metrics.gauges) {
    table.add_row({name, "gauge", format_fixed(value, 2), "", "", ""});
  }
  for (const auto& [name, h] : metrics.histograms) {
    table.add_row({name, "histogram",
                   with_commas(static_cast<long long>(h.count)) + " obs",
                   format_fixed(h.p50, 3), format_fixed(h.p90, 3),
                   format_fixed(h.p99, 3)});
  }
  return table.render();
}

std::string metrics_table() {
  return metrics_table(MetricsRegistry::instance().snapshot());
}

std::string default_report_path() {
  const char* path = std::getenv("REPRO_TRACE_OUT");
  return path == nullptr || *path == '\0' ? "run_report.json" : path;
}

void write_run_report(const std::string& path) {
  // Embed the resource time-series (if the sampler ran) as a report
  // section so the schema stays additive for v1 consumers.
  const std::vector<ResourceSample> samples = sampler().samples();
  if (!samples.empty()) {
    set_report_section("sampler", sampler_section_json(samples));
  }
  write_file(path, run_report_json() + "\n");
}

bool maybe_write_run_report() {
  if (!tracing_enabled()) return false;
  // Best effort: a bad REPRO_TRACE_OUT must not abort a harness that has
  // already finished its real work.
  try {
    write_run_report(default_report_path());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[trace: failed to write %s: %s]\n",
                 default_report_path().c_str(), e.what());
    return false;
  }
  return true;
}

}  // namespace repro::obs
