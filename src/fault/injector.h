// Applies a FaultPlan to concrete pipeline artifacts: scan record streams,
// TLS cert populations, and ping-campaign configuration. All injections are
// stateless-hash driven from the plan seed, so replaying the same plan over
// the same input is bit-for-bit identical, and an inactive plan never
// mutates anything.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault_plan.h"
#include "mlab/ping_mesh.h"
#include "rdns/ptr_store.h"
#include "route/traceroute.h"
#include "scan/scanner.h"
#include "tls/cert_store.h"

namespace repro::fault {

/// What inject_scan_faults removed.
struct ScanFaultOutcome {
  std::size_t truncated = 0;     // lost with their whole /8 shard
  std::size_t burst_missed = 0;  // lost to an elevated-miss burst
  std::size_t dropped() const noexcept { return truncated + burst_missed; }
};

/// Drops records per the plan's ScanFaults. Preserves order; returns the
/// input unchanged when those faults are inactive.
std::vector<ScanRecord> inject_scan_faults(std::vector<ScanRecord> records,
                                           const FaultPlan& plan,
                                           ScanFaultOutcome* outcome = nullptr);

/// What inject_cert_faults rewrote.
struct CertFaultOutcome {
  std::size_t churned = 0;  // re-keyed, names intact
  std::size_t garbled = 0;  // names destroyed -> invisible to classification
};

/// Rewrites certificates in place per the plan's CertFaults.
void inject_cert_faults(CertStore& store, const FaultPlan& plan,
                        CertFaultOutcome* outcome = nullptr);

/// Folds the plan's ping + anycast faults into a PingConfig: vantage-point
/// outages, ICMP storms, extra unresponsive IPs, and extra impossible-IP
/// (split-personality) artifacts. No-op for an inactive plan.
void apply_ping_faults(PingConfig& config, const FaultPlan& plan);

/// Folds the plan's BGP flap faults into a TracerouteConfig. No-op when
/// route faults are inactive, so the engine stays bit-identical.
void apply_route_faults(TracerouteConfig& config, const FaultPlan& plan);

/// Folds the plan's PTR-record faults into a PtrConfig. No-op when rdns
/// faults are inactive, so the synthesized corpus stays bit-identical.
void apply_rdns_faults(PtrConfig& config, const FaultPlan& plan);

}  // namespace repro::fault
