#include "fault/injector.h"

#include <algorithm>
#include <cstdio>

#include "util/rng.h"

namespace repro::fault {

namespace {

// Salts keep the per-pathology hash streams independent of each other and
// of the measurement-noise streams inside PingMesh.
constexpr std::uint64_t kShardSalt = 0x5C5C;
constexpr std::uint64_t kBurstRegionSalt = 0xB0B0;
constexpr std::uint64_t kBurstRecordSalt = 0xB1B1;
constexpr std::uint64_t kCertGarbleSalt = 0x6A6A;
constexpr std::uint64_t kCertChurnSalt = 0xC4C4;

/// Deterministic uniform in [0,1) from a key (same construction as the
/// PingMesh pathology draws).
double hash_uniform(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

std::uint64_t ip_key(Ipv4 ip, std::uint64_t seed, std::uint64_t salt) noexcept {
  return mix64((std::uint64_t{ip.value()} << 8) ^ seed ^ salt);
}

}  // namespace

std::vector<ScanRecord> inject_scan_faults(std::vector<ScanRecord> records,
                                           const FaultPlan& plan,
                                           ScanFaultOutcome* outcome) {
  const ScanFaults& faults = plan.scan;
  const bool truncating = faults.shard_truncation > 0.0;
  const bool bursting =
      faults.burst_coverage > 0.0 && faults.burst_miss_rate > 0.0;
  if (!truncating && !bursting) return records;

  std::vector<ScanRecord> kept;
  kept.reserve(records.size());
  for (ScanRecord& record : records) {
    const std::uint32_t ip = record.ip.value();
    if (truncating) {
      const std::uint64_t shard = ip >> 24;
      if (hash_uniform(mix64(plan.seed ^ kShardSalt) ^ mix64(shard)) <
          faults.shard_truncation) {
        if (outcome != nullptr) ++outcome->truncated;
        continue;
      }
    }
    if (bursting) {
      const std::uint64_t region = ip >> 16;
      if (hash_uniform(mix64(plan.seed ^ kBurstRegionSalt) ^ mix64(region)) <
              faults.burst_coverage &&
          hash_uniform(ip_key(record.ip, plan.seed, kBurstRecordSalt)) <
              faults.burst_miss_rate) {
        if (outcome != nullptr) ++outcome->burst_missed;
        continue;
      }
    }
    kept.push_back(std::move(record));
  }
  return kept;
}

void inject_cert_faults(CertStore& store, const FaultPlan& plan,
                        CertFaultOutcome* outcome) {
  const CertFaults& faults = plan.cert;
  if (faults.churn_rate <= 0.0 && faults.garbled_cn_rate <= 0.0) return;

  for (const TlsEndpoint& endpoint : store.all_sorted()) {
    if (faults.garbled_cn_rate > 0.0 &&
        hash_uniform(ip_key(endpoint.ip, plan.seed, kCertGarbleSalt)) <
            faults.garbled_cn_rate) {
      TlsCertificate cert = endpoint.cert;
      char junk[32];
      std::snprintf(junk, sizeof(junk), "garbled-%016llx",
                    static_cast<unsigned long long>(
                        mix64(endpoint.ip.value() ^ plan.seed)));
      cert.subject.common_name = junk;
      cert.subject.organization.clear();
      cert.san_dns.clear();
      store.install(endpoint.ip, std::move(cert));
      if (outcome != nullptr) ++outcome->garbled;
      continue;
    }
    if (faults.churn_rate > 0.0 &&
        hash_uniform(ip_key(endpoint.ip, plan.seed, kCertChurnSalt)) <
            faults.churn_rate) {
      TlsCertificate cert = endpoint.cert;
      cert.serial = mix64(cert.serial + 1);
      cert.not_before_year = 2023;
      cert.not_after_year = 2026;
      store.install(endpoint.ip, std::move(cert));
      if (outcome != nullptr) ++outcome->churned;
    }
  }
}

void apply_ping_faults(PingConfig& config, const FaultPlan& plan) {
  // Gate on the ping/anycast knobs specifically, not plan.active(): a plan
  // carrying only route/rdns/store faults must leave the ping config (and
  // with it the measurement digest) untouched, so such plans keep sharing
  // measurement artifacts with the clean baseline.
  if (plan.ping.vp_outage_rate <= 0.0 && plan.ping.icmp_storm_rate <= 0.0 &&
      plan.ping.extra_unresponsive_rate <= 0.0 &&
      plan.anycast.impossible_ip_rate <= 0.0) {
    return;
  }
  const auto add_rate = [](double base, double extra) {
    return std::clamp(base + extra, 0.0, 0.95);
  };
  config.fault_seed = plan.seed;
  config.vp_outage_rate = add_rate(config.vp_outage_rate,
                                   plan.ping.vp_outage_rate);
  config.icmp_storm_isp_rate = add_rate(config.icmp_storm_isp_rate,
                                        plan.ping.icmp_storm_rate);
  if (plan.ping.icmp_storm_rate > 0.0) {
    config.icmp_storm_failure = plan.ping.icmp_storm_failure;
  }
  config.unresponsive_ip_rate = add_rate(config.unresponsive_ip_rate,
                                         plan.ping.extra_unresponsive_rate);
  config.split_personality_rate = add_rate(config.split_personality_rate,
                                           plan.anycast.impossible_ip_rate);
}

void apply_route_faults(TracerouteConfig& config, const FaultPlan& plan) {
  if (plan.route.flap_rate <= 0.0) return;
  config.fault_seed = plan.seed;
  config.flap_rate = std::clamp(plan.route.flap_rate, 0.0, 0.95);
  config.flap_period = plan.route.flap_period == 0 ? 1 : plan.route.flap_period;
}

void apply_rdns_faults(PtrConfig& config, const FaultPlan& plan) {
  const RdnsFaults& faults = plan.rdns;
  if (faults.missing_ptr_rate <= 0.0 && faults.stale_ptr_rate <= 0.0 &&
      faults.garbled_ptr_rate <= 0.0) {
    return;
  }
  const auto clamp_rate = [](double rate) {
    return std::clamp(rate, 0.0, 0.95);
  };
  config.fault_seed = plan.seed;
  config.missing_ptr_rate = clamp_rate(faults.missing_ptr_rate);
  config.stale_ptr_rate = clamp_rate(faults.stale_ptr_rate);
  config.garbled_ptr_rate = clamp_rate(faults.garbled_ptr_rate);
}

}  // namespace repro::fault
