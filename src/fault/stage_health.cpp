#include "fault/stage_health.h"

#include <algorithm>

#include "obs/json.h"

namespace repro::fault {

std::string_view to_string(StageStatus status) noexcept {
  switch (status) {
    case StageStatus::kOk: return "ok";
    case StageStatus::kDegraded: return "degraded";
    case StageStatus::kFailed: return "failed";
  }
  return "ok";
}

void StageHealth::merge(const StageHealth& other) {
  status = std::max(status, other.status);
  dropped += other.dropped;
  total += other.total;
  for (const std::string& reason : other.reasons) {
    if (std::find(reasons.begin(), reasons.end(), reason) == reasons.end()) {
      reasons.push_back(reason);
    }
  }
}

std::string to_json(const StageHealth& health) {
  std::string out = "{\"status\":\"";
  out += to_string(health.status);
  out += "\",\"dropped\":" + std::to_string(health.dropped);
  out += ",\"total\":" + std::to_string(health.total);
  out += ",\"reasons\":[";
  for (std::size_t i = 0; i < health.reasons.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + obs::json_escape(health.reasons[i]) + "\"";
  }
  out += "]}";
  return out;
}

StageStatus overall_status(
    const std::map<std::string, StageHealth>& stages) noexcept {
  StageStatus worst = StageStatus::kOk;
  for (const auto& [name, health] : stages) {
    (void)name;
    worst = std::max(worst, health.status);
  }
  return worst;
}

std::string fault_section_json(const std::string& plan_json,
                               const std::map<std::string, StageHealth>& stages) {
  std::string out = "{\"plan\":" + plan_json;
  out += ",\"overall\":\"";
  out += to_string(overall_status(stages));
  out += "\",\"stages\":{";
  bool first = true;
  for (const auto& [name, health] : stages) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::json_escape(name) + "\":" + to_json(health);
  }
  out += "}}";
  return out;
}

}  // namespace repro::fault
