// Per-stage health verdicts for degraded-mode pipeline execution.
//
// Instead of a stage failure aborting the whole run with a repro::Error,
// each pipeline stage reports a StageHealth: ok (clean), degraded (faults
// cost it data but it produced a usable result), or failed (it produced an
// empty fallback). Health records are merged across repeated invocations of
// the same stage (e.g. discovery over several snapshots) and exported into
// run_report.json's "fault" section.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace repro::fault {

enum class StageStatus { kOk = 0, kDegraded = 1, kFailed = 2 };

std::string_view to_string(StageStatus status) noexcept;

struct StageHealth {
  StageStatus status = StageStatus::kOk;
  /// Records/measurements lost to faults (not baseline noise), out of
  /// `total` opportunities the stage saw.
  std::uint64_t dropped = 0;
  std::uint64_t total = 0;
  /// Human-readable reasons ("3/163 vantage points dark", ...).
  std::vector<std::string> reasons;

  double drop_fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(dropped) / static_cast<double>(total);
  }

  /// Folds another record of the same stage in: worst status wins, counts
  /// add, reasons append (duplicates skipped).
  void merge(const StageHealth& other);
};

/// JSON object for one stage record.
std::string to_json(const StageHealth& health);

/// Worst status across a stage-health map (kOk when empty).
StageStatus overall_status(const std::map<std::string, StageHealth>& stages) noexcept;

/// JSON for the run_report "fault" section: `plan_json` is the FaultPlan's
/// own JSON (passed as a string so this header stays independent of it).
std::string fault_section_json(const std::string& plan_json,
                               const std::map<std::string, StageHealth>& stages);

}  // namespace repro::fault
