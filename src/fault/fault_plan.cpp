#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace repro::fault {

namespace {

double clamp_rate(double rate) noexcept {
  return std::clamp(rate, 0.0, 0.95);
}

/// Forces `value` into [lo, hi], mapping NaN to `lo`. Bumps `repairs` when
/// the input was out of range.
double repair(double value, double lo, double hi, std::uint64_t* repairs) {
  if (std::isnan(value)) {
    ++*repairs;
    return lo;
  }
  const double clamped = std::clamp(value, lo, hi);
  if (clamped != value) ++*repairs;
  return clamped;
}

void append_field(std::string& out, const char* name, double value,
                  bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += name;
  out += "\":" + obs::json_number(value);
}

}  // namespace

bool FaultPlan::active() const noexcept {
  return scan.shard_truncation > 0.0 ||
         (scan.burst_coverage > 0.0 && scan.burst_miss_rate > 0.0) ||
         ping.vp_outage_rate > 0.0 || ping.icmp_storm_rate > 0.0 ||
         ping.extra_unresponsive_rate > 0.0 || cert.churn_rate > 0.0 ||
         cert.garbled_cn_rate > 0.0 || anycast.impossible_ip_rate > 0.0 ||
         route.flap_rate > 0.0 || rdns.missing_ptr_rate > 0.0 ||
         rdns.stale_ptr_rate > 0.0 || rdns.garbled_ptr_rate > 0.0 ||
         store.corrupt_rate > 0.0;
}

FaultPlan FaultPlan::chaos() noexcept {
  FaultPlan plan;
  plan.scan.shard_truncation = 0.04;
  plan.scan.burst_coverage = 0.10;
  plan.scan.burst_miss_rate = 0.50;
  plan.ping.vp_outage_rate = 0.06;
  plan.ping.icmp_storm_rate = 0.05;
  plan.ping.icmp_storm_failure = 0.90;
  plan.ping.extra_unresponsive_rate = 0.03;
  plan.cert.churn_rate = 0.05;
  plan.cert.garbled_cn_rate = 0.02;
  plan.anycast.impossible_ip_rate = 0.01;
  plan.route.flap_rate = 0.12;
  plan.route.flap_period = 4;
  plan.rdns.missing_ptr_rate = 0.10;
  plan.rdns.stale_ptr_rate = 0.05;
  plan.rdns.garbled_ptr_rate = 0.03;
  return plan;
}

FaultPlan FaultPlan::scaled_by(double factor) const noexcept {
  const double f = std::max(0.0, factor);
  FaultPlan out = *this;
  out.scan.shard_truncation = clamp_rate(scan.shard_truncation * f);
  out.scan.burst_coverage = clamp_rate(scan.burst_coverage * f);
  out.scan.burst_miss_rate = clamp_rate(scan.burst_miss_rate * f);
  out.ping.vp_outage_rate = clamp_rate(ping.vp_outage_rate * f);
  out.ping.icmp_storm_rate = clamp_rate(ping.icmp_storm_rate * f);
  out.ping.extra_unresponsive_rate =
      clamp_rate(ping.extra_unresponsive_rate * f);
  out.cert.churn_rate = clamp_rate(cert.churn_rate * f);
  out.cert.garbled_cn_rate = clamp_rate(cert.garbled_cn_rate * f);
  out.anycast.impossible_ip_rate = clamp_rate(anycast.impossible_ip_rate * f);
  out.route.flap_rate = clamp_rate(route.flap_rate * f);
  out.rdns.missing_ptr_rate = clamp_rate(rdns.missing_ptr_rate * f);
  out.rdns.stale_ptr_rate = clamp_rate(rdns.stale_ptr_rate * f);
  out.rdns.garbled_ptr_rate = clamp_rate(rdns.garbled_ptr_rate * f);
  out.store.corrupt_rate = clamp_rate(store.corrupt_rate * f);
  return out;
}

FaultPlan FaultPlan::sanitized() const {
  std::uint64_t repairs = 0;
  FaultPlan out = *this;
  double* const rates[] = {
      &out.scan.shard_truncation,     &out.scan.burst_coverage,
      &out.scan.burst_miss_rate,      &out.ping.vp_outage_rate,
      &out.ping.icmp_storm_rate,      &out.ping.extra_unresponsive_rate,
      &out.cert.churn_rate,           &out.cert.garbled_cn_rate,
      &out.anycast.impossible_ip_rate, &out.route.flap_rate,
      &out.rdns.missing_ptr_rate,     &out.rdns.stale_ptr_rate,
      &out.rdns.garbled_ptr_rate,     &out.store.corrupt_rate,
  };
  for (double* rate : rates) *rate = repair(*rate, 0.0, 0.95, &repairs);
  out.ping.icmp_storm_failure =
      repair(ping.icmp_storm_failure, 0.0, 1.0, &repairs);
  out.store.truncate_fraction =
      repair(store.truncate_fraction, 0.0, 1.0, &repairs);
  if (out.route.flap_period == 0) {
    out.route.flap_period = 1;
    ++repairs;
  }
  if (repairs > 0) obs::metrics().counter("fault.plan_clamped").add(repairs);
  return out;
}

FaultPlan FaultPlan::from_env() {
  std::uint64_t garbage = 0;
  const char* toggle = std::getenv("REPRO_FAULT");
  FaultPlan plan = none();
  if (toggle != nullptr && *toggle != '\0') {
    const std::string value = toggle;
    if (value == "1" || value == "chaos" || value == "default") {
      plan = chaos();
    } else if (value != "0" && value != "none") {
      char* end = nullptr;
      const double factor = std::strtod(value.c_str(), &end);
      if (end != value.c_str() && factor > 0.0) {
        plan = chaos().scaled_by(factor);
      } else if (end != value.c_str() && (std::isnan(factor) || factor < 0.0)) {
        ++garbage;  // "-3" or "nan": treated as no plan, not a crash knob
      }
    }
  }
  if (const char* intensity = std::getenv("REPRO_FAULT_INTENSITY")) {
    char* end = nullptr;
    const double factor = std::strtod(intensity, &end);
    if (end != intensity && factor >= 0.0) {
      plan = plan.scaled_by(factor);
    } else if (end != intensity) {
      ++garbage;  // NaN or negative intensity: ignored, counted
    }
  }
  if (const char* rate = std::getenv("REPRO_FAULT_STORE")) {
    char* end = nullptr;
    const double value = std::strtod(rate, &end);
    if (end != rate && value > 0.0) {
      plan.store.corrupt_rate = value;  // sanitized() clamps > 0.95
    } else if (end != rate && (std::isnan(value) || value < 0.0)) {
      ++garbage;
    }
  }
  if (const char* seed = std::getenv("REPRO_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(seed, &end, 10);
    if (end != seed) plan.seed = value;
  }
  if (garbage > 0) obs::metrics().counter("fault.plan_clamped").add(garbage);
  return plan.sanitized();
}

std::string FaultPlan::measurement_json() const {
  std::string out = "{\"seed\":" + std::to_string(seed);
  bool first = false;
  append_field(out, "scan.shard_truncation", scan.shard_truncation, &first);
  append_field(out, "scan.burst_coverage", scan.burst_coverage, &first);
  append_field(out, "scan.burst_miss_rate", scan.burst_miss_rate, &first);
  append_field(out, "ping.vp_outage_rate", ping.vp_outage_rate, &first);
  append_field(out, "ping.icmp_storm_rate", ping.icmp_storm_rate, &first);
  append_field(out, "ping.icmp_storm_failure", ping.icmp_storm_failure, &first);
  append_field(out, "ping.extra_unresponsive_rate",
               ping.extra_unresponsive_rate, &first);
  append_field(out, "cert.churn_rate", cert.churn_rate, &first);
  append_field(out, "cert.garbled_cn_rate", cert.garbled_cn_rate, &first);
  append_field(out, "anycast.impossible_ip_rate", anycast.impossible_ip_rate,
               &first);
  out += "}";
  return out;
}

std::string FaultPlan::to_json() const {
  std::string out = measurement_json();
  out.pop_back();  // reopen the measurement object to append the rest
  bool first = false;
  append_field(out, "route.flap_rate", route.flap_rate, &first);
  append_field(out, "route.flap_period",
               static_cast<double>(route.flap_period), &first);
  append_field(out, "rdns.missing_ptr_rate", rdns.missing_ptr_rate, &first);
  append_field(out, "rdns.stale_ptr_rate", rdns.stale_ptr_rate, &first);
  append_field(out, "rdns.garbled_ptr_rate", rdns.garbled_ptr_rate, &first);
  append_field(out, "store.corrupt_rate", store.corrupt_rate, &first);
  append_field(out, "store.truncate_fraction", store.truncate_fraction, &first);
  out += "}";
  return out;
}

}  // namespace repro::fault
