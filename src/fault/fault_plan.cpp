#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/json.h"

namespace repro::fault {

namespace {

double clamp_rate(double rate) noexcept {
  return std::clamp(rate, 0.0, 0.95);
}

void append_field(std::string& out, const char* name, double value,
                  bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += name;
  out += "\":" + obs::json_number(value);
}

}  // namespace

bool FaultPlan::active() const noexcept {
  return scan.shard_truncation > 0.0 ||
         (scan.burst_coverage > 0.0 && scan.burst_miss_rate > 0.0) ||
         ping.vp_outage_rate > 0.0 || ping.icmp_storm_rate > 0.0 ||
         ping.extra_unresponsive_rate > 0.0 || cert.churn_rate > 0.0 ||
         cert.garbled_cn_rate > 0.0 || anycast.impossible_ip_rate > 0.0;
}

FaultPlan FaultPlan::chaos() noexcept {
  FaultPlan plan;
  plan.scan.shard_truncation = 0.04;
  plan.scan.burst_coverage = 0.10;
  plan.scan.burst_miss_rate = 0.50;
  plan.ping.vp_outage_rate = 0.06;
  plan.ping.icmp_storm_rate = 0.05;
  plan.ping.icmp_storm_failure = 0.90;
  plan.ping.extra_unresponsive_rate = 0.03;
  plan.cert.churn_rate = 0.05;
  plan.cert.garbled_cn_rate = 0.02;
  plan.anycast.impossible_ip_rate = 0.01;
  return plan;
}

FaultPlan FaultPlan::scaled_by(double factor) const noexcept {
  const double f = std::max(0.0, factor);
  FaultPlan out = *this;
  out.scan.shard_truncation = clamp_rate(scan.shard_truncation * f);
  out.scan.burst_coverage = clamp_rate(scan.burst_coverage * f);
  out.scan.burst_miss_rate = clamp_rate(scan.burst_miss_rate * f);
  out.ping.vp_outage_rate = clamp_rate(ping.vp_outage_rate * f);
  out.ping.icmp_storm_rate = clamp_rate(ping.icmp_storm_rate * f);
  out.ping.extra_unresponsive_rate =
      clamp_rate(ping.extra_unresponsive_rate * f);
  out.cert.churn_rate = clamp_rate(cert.churn_rate * f);
  out.cert.garbled_cn_rate = clamp_rate(cert.garbled_cn_rate * f);
  out.anycast.impossible_ip_rate = clamp_rate(anycast.impossible_ip_rate * f);
  return out;
}

FaultPlan FaultPlan::from_env() {
  const char* toggle = std::getenv("REPRO_FAULT");
  FaultPlan plan = none();
  if (toggle != nullptr && *toggle != '\0') {
    const std::string value = toggle;
    if (value == "1" || value == "chaos" || value == "default") {
      plan = chaos();
    } else if (value != "0" && value != "none") {
      char* end = nullptr;
      const double factor = std::strtod(value.c_str(), &end);
      if (end != value.c_str() && factor > 0.0) {
        plan = chaos().scaled_by(factor);
      }
    }
  }
  if (const char* intensity = std::getenv("REPRO_FAULT_INTENSITY")) {
    char* end = nullptr;
    const double factor = std::strtod(intensity, &end);
    if (end != intensity && factor >= 0.0) plan = plan.scaled_by(factor);
  }
  if (const char* seed = std::getenv("REPRO_FAULT_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(seed, &end, 10);
    if (end != seed) plan.seed = value;
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  std::string out = "{\"seed\":" + std::to_string(seed);
  bool first = false;
  append_field(out, "scan.shard_truncation", scan.shard_truncation, &first);
  append_field(out, "scan.burst_coverage", scan.burst_coverage, &first);
  append_field(out, "scan.burst_miss_rate", scan.burst_miss_rate, &first);
  append_field(out, "ping.vp_outage_rate", ping.vp_outage_rate, &first);
  append_field(out, "ping.icmp_storm_rate", ping.icmp_storm_rate, &first);
  append_field(out, "ping.icmp_storm_failure", ping.icmp_storm_failure, &first);
  append_field(out, "ping.extra_unresponsive_rate",
               ping.extra_unresponsive_rate, &first);
  append_field(out, "cert.churn_rate", cert.churn_rate, &first);
  append_field(out, "cert.garbled_cn_rate", cert.garbled_cn_rate, &first);
  append_field(out, "anycast.impossible_ip_rate", anycast.impossible_ip_rate,
               &first);
  out += "}";
  return out;
}

}  // namespace repro::fault
