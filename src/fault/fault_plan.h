// Deterministic, seedable fault injection for the measurement pipeline.
//
// The paper's methodology is itself a stack of robustness defenses: it
// discards 12K unresponsive IPs, drops 1.9K speed-of-light violators, and
// keeps only ISPs with >= 100 fully-responsive vantage points (S2.2,
// Appendix A). A FaultPlan injects the measurement pathologies those
// defenses exist for -- scan shard loss, miss-rate bursts, vantage-point
// outages, ICMP rate-limit storms, certificate churn and corruption,
// anycast "impossible IP" artifacts, BGP path flapping mid-study, stale or
// missing PTR records, and live artifact-store corruption -- so the
// defenses are exercised instead of assumed. Every pathology is driven by
// stateless hashing from one seed: the same plan over the same world is
// bit-for-bit reproducible, and a plan with every rate at zero is a no-op.
//
// See docs/ROBUSTNESS.md for the fault taxonomy and the REPRO_FAULT_* env
// toggles.
#pragma once

#include <cstdint>
#include <string>

namespace repro::fault {

/// Faults in the Censys-style port-443 scan (S2.2 input).
struct ScanFaults {
  /// Fraction of /8 scan shards whose records are lost wholesale (a shard
  /// worker crashing or its output truncated mid-campaign).
  double shard_truncation = 0.0;

  /// Fraction of /16 regions under an elevated-miss burst (transient
  /// firewalling or rate limiting near the target), and the extra
  /// per-record miss probability inside a bursty region.
  double burst_coverage = 0.0;
  double burst_miss_rate = 0.0;
};

/// Faults in the M-Lab-style ping campaign (Appendix A input).
struct PingFaults {
  /// Fraction of vantage points that are completely dark (site outage for
  /// the whole campaign). Exercises the >= min_usable_sites ISP filter.
  double vp_outage_rate = 0.0;

  /// Extra fraction of ISPs under an ICMP rate-limit storm, and the
  /// per-probe failure probability while storming. Harsher than the
  /// baseline icmp_limited_* pathology; the retry budget claws some of
  /// these measurements back.
  double icmp_storm_rate = 0.0;
  double icmp_storm_failure = 0.9;

  /// Extra fraction of offnet IPs that never answer pings (on top of the
  /// scenario's baseline unresponsive_ip_rate).
  double extra_unresponsive_rate = 0.0;
};

/// Faults in the TLS certificate population (discovery input).
struct CertFaults {
  /// Fraction of endpoints re-keyed mid-scan: new serial and validity
  /// window, names unchanged. Benign churn the fingerprints must absorb.
  double churn_rate = 0.0;

  /// Fraction of endpoints whose record is garbled in transit: CN replaced
  /// with junk, SANs lost. These IPs become invisible to classification.
  double garbled_cn_rate = 0.0;
};

/// Anycast/NAT measurement artifacts.
struct AnycastFaults {
  /// Extra fraction of offnet IPs whose probes answer from two locations
  /// (on top of the scenario's baseline split_personality_rate). Exercises
  /// the speed-of-light filter.
  double impossible_ip_rate = 0.0;
};

/// BGP pathologies during the Section 4.2.1 traceroute/peering study.
struct RouteFaults {
  /// Per-AS probability the AS's routes flap during the campaign: in a flap
  /// epoch the AS withdraws its best route and forwards via its next-best
  /// (or blackholes when it has none), so probes issued at different times
  /// observe disagreeing paths through it.
  double flap_rate = 0.0;

  /// Probes per flap epoch: smaller periods flip routing state more often
  /// within one study. Structural knob, never scaled by intensity.
  std::uint64_t flap_period = 4;
};

/// Reverse-DNS pathologies in the Rapid7-Sonar-style PTR corpus (S3.2).
struct RdnsFaults {
  /// Fraction of would-be PTR records withdrawn entirely (zone outage or a
  /// lapsed delegation mid-snapshot).
  double missing_ptr_rate = 0.0;

  /// Fraction of located hostnames whose metro code is stale: the record
  /// still names the metro the server occupied before a migration.
  double stale_ptr_rate = 0.0;

  /// Fraction of hostnames garbled in the snapshot (encoding damage): the
  /// record exists but no location hint can be extracted from it.
  double garbled_ptr_rate = 0.0;
};

/// Live artifact-store chaos: corruption while warm readers are running.
struct StoreFaults {
  /// Per-artifact probability that its on-disk bytes are garbled right
  /// before the first load (a torn write or disk fault landing mid-run).
  /// Exercises the corrupt -> delete -> recompute -> republish self-heal
  /// path under concurrency; never changes recomputed content.
  double corrupt_rate = 0.0;

  /// Of the injected corruptions: fraction realized as file truncation
  /// (the rest are single-byte flips). Severity knob, never scaled.
  double truncate_fraction = 0.5;
};

/// One composable, reproducible fault configuration.
struct FaultPlan {
  std::uint64_t seed = 4242;
  ScanFaults scan;
  PingFaults ping;
  CertFaults cert;
  AnycastFaults anycast;
  RouteFaults route;
  RdnsFaults rdns;
  StoreFaults store;

  /// True when any fault rate is nonzero.
  bool active() const noexcept;

  /// Every rate at zero: guaranteed no-op, bit-identical to no plan.
  static FaultPlan none() noexcept { return FaultPlan{}; }

  /// The default degraded-campaign plan: every measurement pathology at a
  /// level a real Censys/M-Lab campaign plausibly sees, severe enough that
  /// stages report degraded but the run completes end to end. Store chaos
  /// stays off -- it is an infrastructure fault, not a campaign one; opt in
  /// via store.corrupt_rate or REPRO_FAULT_STORE.
  static FaultPlan chaos() noexcept;

  /// This plan with every rate multiplied by `factor` (clamped to
  /// [0, 0.95]; failure severities, the flap period and the seed are left
  /// alone). factor 0 yields an inactive plan.
  FaultPlan scaled_by(double factor) const noexcept;

  /// This plan with every knob forced into its legal range: NaN and
  /// negative rates become 0, rates above 0.95 saturate, severities clamp
  /// to [0, 1], and a zero flap period becomes 1. Each repaired field bumps
  /// the fault.plan_clamped counter; a well-formed plan returns unchanged.
  FaultPlan sanitized() const;

  /// Plan from the environment: REPRO_FAULT unset/"0" -> none();
  /// "1"/"chaos" -> chaos(); a number -> chaos().scaled_by(value).
  /// REPRO_FAULT_INTENSITY scales whatever REPRO_FAULT selected,
  /// REPRO_FAULT_STORE sets store.corrupt_rate, and REPRO_FAULT_SEED
  /// overrides the seed. Garbage values (NaN, negatives) are clamped via
  /// sanitized() -- counted in fault.plan_clamped -- never propagated.
  static FaultPlan from_env();

  /// Compact JSON object of every plan parameter (for run_report.json).
  std::string to_json() const;

  /// JSON of only the knobs that can change *measured artifact content*
  /// (seed + scan/ping/cert/anycast). Route and rdns faults perturb studies
  /// computed downstream of the persisted artifacts, and store faults are
  /// self-healing by construction, so plans differing only in those share
  /// artifacts -- which is also what lets a store-chaos run hit (and so
  /// corrupt, and so prove it can heal) a clean baseline's warm artifacts.
  /// Byte-compatible with the pre-route/rdns/store to_json(), so existing
  /// stores stay warm.
  std::string measurement_json() const;
};

}  // namespace repro::fault
