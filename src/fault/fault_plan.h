// Deterministic, seedable fault injection for the measurement pipeline.
//
// The paper's methodology is itself a stack of robustness defenses: it
// discards 12K unresponsive IPs, drops 1.9K speed-of-light violators, and
// keeps only ISPs with >= 100 fully-responsive vantage points (S2.2,
// Appendix A). A FaultPlan injects the measurement pathologies those
// defenses exist for -- scan shard loss, miss-rate bursts, vantage-point
// outages, ICMP rate-limit storms, certificate churn and corruption,
// anycast "impossible IP" artifacts -- so the defenses are exercised
// instead of assumed. Every pathology is driven by stateless hashing from
// one seed: the same plan over the same world is bit-for-bit reproducible,
// and a plan with every rate at zero is a no-op.
//
// See docs/ROBUSTNESS.md for the fault taxonomy and the REPRO_FAULT_* env
// toggles.
#pragma once

#include <cstdint>
#include <string>

namespace repro::fault {

/// Faults in the Censys-style port-443 scan (S2.2 input).
struct ScanFaults {
  /// Fraction of /8 scan shards whose records are lost wholesale (a shard
  /// worker crashing or its output truncated mid-campaign).
  double shard_truncation = 0.0;

  /// Fraction of /16 regions under an elevated-miss burst (transient
  /// firewalling or rate limiting near the target), and the extra
  /// per-record miss probability inside a bursty region.
  double burst_coverage = 0.0;
  double burst_miss_rate = 0.0;
};

/// Faults in the M-Lab-style ping campaign (Appendix A input).
struct PingFaults {
  /// Fraction of vantage points that are completely dark (site outage for
  /// the whole campaign). Exercises the >= min_usable_sites ISP filter.
  double vp_outage_rate = 0.0;

  /// Extra fraction of ISPs under an ICMP rate-limit storm, and the
  /// per-probe failure probability while storming. Harsher than the
  /// baseline icmp_limited_* pathology; the retry budget claws some of
  /// these measurements back.
  double icmp_storm_rate = 0.0;
  double icmp_storm_failure = 0.9;

  /// Extra fraction of offnet IPs that never answer pings (on top of the
  /// scenario's baseline unresponsive_ip_rate).
  double extra_unresponsive_rate = 0.0;
};

/// Faults in the TLS certificate population (discovery input).
struct CertFaults {
  /// Fraction of endpoints re-keyed mid-scan: new serial and validity
  /// window, names unchanged. Benign churn the fingerprints must absorb.
  double churn_rate = 0.0;

  /// Fraction of endpoints whose record is garbled in transit: CN replaced
  /// with junk, SANs lost. These IPs become invisible to classification.
  double garbled_cn_rate = 0.0;
};

/// Anycast/NAT measurement artifacts.
struct AnycastFaults {
  /// Extra fraction of offnet IPs whose probes answer from two locations
  /// (on top of the scenario's baseline split_personality_rate). Exercises
  /// the speed-of-light filter.
  double impossible_ip_rate = 0.0;
};

/// One composable, reproducible fault configuration.
struct FaultPlan {
  std::uint64_t seed = 4242;
  ScanFaults scan;
  PingFaults ping;
  CertFaults cert;
  AnycastFaults anycast;

  /// True when any fault rate is nonzero.
  bool active() const noexcept;

  /// Every rate at zero: guaranteed no-op, bit-identical to no plan.
  static FaultPlan none() noexcept { return FaultPlan{}; }

  /// The default degraded-campaign plan: every pathology at a level a real
  /// Censys/M-Lab campaign plausibly sees, severe enough that stages report
  /// degraded but the run completes end to end.
  static FaultPlan chaos() noexcept;

  /// This plan with every rate multiplied by `factor` (clamped to
  /// [0, 0.95]; failure severities and the seed are left alone). factor 0
  /// yields an inactive plan.
  FaultPlan scaled_by(double factor) const noexcept;

  /// Plan from the environment: REPRO_FAULT unset/"0" -> none();
  /// "1"/"chaos" -> chaos(); a number -> chaos().scaled_by(value).
  /// REPRO_FAULT_INTENSITY scales whatever REPRO_FAULT selected and
  /// REPRO_FAULT_SEED overrides the seed.
  static FaultPlan from_env();

  /// Compact JSON object of the plan parameters (for run_report.json).
  std::string to_json() const;
};

}  // namespace repro::fault
