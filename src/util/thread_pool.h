// A small reusable thread pool plus data-parallel loop helpers, used to fan
// the clustering tier (the pipeline's dominant cost) across cores.
//
// Determinism contract: parallel_for / parallel_for_blocks only change which
// thread executes each index range, never what is computed. A body that
// writes to disjoint per-index slots therefore produces bit-identical output
// for every thread count, including the serial fallback. The clustering
// engine is built on this contract and tests/test_parallel.cpp enforces it.
//
// Thread-count resolution (first match wins):
//   1. an explicit `threads` argument > 0,
//   2. set_default_thread_count(n) with n > 0 (programmatic override),
//   3. the REPRO_THREADS environment variable (read once),
//   4. std::thread::hardware_concurrency().
// A resolved count of 1 runs the body inline on the caller with no pool
// traffic at all. Nested parallel_for calls (a body that itself calls
// parallel_for, e.g. pairwise_distances inside the per-ISP fan-out) run
// serially inside the outer region instead of deadlocking the pool.
//
// See docs/PARALLELISM.md for the design rationale.
#pragma once

#include <cstddef>
#include <functional>

namespace repro {

/// std::thread::hardware_concurrency(), never 0.
std::size_t hardware_thread_count() noexcept;

/// Worker count used when a parallel loop is not given an explicit one:
/// the set_default_thread_count override, else REPRO_THREADS, else the
/// hardware concurrency.
std::size_t default_thread_count() noexcept;

/// Programmatic override of the default (tests, benchmarks). 0 clears the
/// override and falls back to REPRO_THREADS / hardware concurrency.
void set_default_thread_count(std::size_t count) noexcept;

/// Cross-thread task instrumentation hooks. The obs tracing layer installs
/// these at load time so spans opened on pool workers re-parent under the
/// submitting thread's open span (with enqueue->run flow arrows in the
/// exported trace); the pool itself stays free of an obs dependency. All
/// pointers may be null. `on_submit` runs on the submitting thread at
/// enqueue and returns an opaque token -- nullptr means "nothing to
/// propagate" and the task is not wrapped at all, so the disabled-tracing
/// path costs one indirect call per submit. `on_run_begin` / `on_run_end`
/// bracket the task body on the worker.
struct TaskHooks {
  void* (*on_submit)() noexcept = nullptr;
  void* (*on_run_begin)(void* token) noexcept = nullptr;
  void (*on_run_end)(void* token, void* scope) noexcept = nullptr;
};

/// Installs the process-wide task hooks (idempotent; last write wins).
void set_task_hooks(const TaskHooks& hooks) noexcept;

/// Fixed set of worker threads consuming a FIFO task queue. Tasks must not
/// block on other tasks; the parallel_for helpers below never do.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  std::size_t worker_count() const noexcept;

  /// Enqueues a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Process-wide pool the parallel_for helpers dispatch to. Sized once at
  /// first use to cover the hardware and any REPRO_THREADS oversubscription
  /// (so determinism tests can ask for 8 threads on a smaller machine).
  static ThreadPool& shared();

  /// True on a thread currently executing inside a pool task or a
  /// parallel_for body; parallel loops started there run serially.
  static bool in_parallel_region() noexcept;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  void worker_loop();

  struct Impl;
  Impl* impl_;
};

/// Runs body(begin, end) over [0, count) split into blocks of `block`
/// indices (0 = one index per block), dynamically load-balanced over
/// `threads` workers (0 = default_thread_count(); the caller participates).
/// The first exception thrown by a body is rethrown on the caller.
void parallel_for_blocks(std::size_t count, std::size_t block,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t threads = 0);

/// Runs body(i) for every i in [0, count); see parallel_for_blocks.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace repro
