#include "util/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace repro::simd {

namespace {

// -1 = no override; otherwise a SimdLevel value.
std::atomic<int> g_override{-1};

SimdLevel detect() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kSse2;  // baseline for x86-64
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel env_cap(SimdLevel supported) noexcept {
  const char* request = std::getenv("REPRO_SIMD");
  if (request == nullptr || request[0] == '\0') return supported;
  const std::optional<SimdLevel> parsed = parse_level(request);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "REPRO_SIMD='%s' not recognized; using %.*s\n",
                 request, static_cast<int>(to_string(supported).size()),
                 to_string(supported).data());
    return supported;
  }
  return *parsed < supported ? *parsed : supported;
}

}  // namespace

std::string_view to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return "sse2";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "scalar";
}

std::optional<SimdLevel> parse_level(std::string_view name) noexcept {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse2") return SimdLevel::kSse2;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

SimdLevel highest_supported() noexcept {
  static const SimdLevel detected = detect();
  return detected;
}

SimdLevel active_level() noexcept {
  const int pinned = g_override.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<SimdLevel>(pinned);
  static const SimdLevel from_env = env_cap(highest_supported());
  return from_env;
}

void set_level_override(SimdLevel level) noexcept {
  const SimdLevel supported = highest_supported();
  g_override.store(static_cast<int>(level < supported ? level : supported),
                   std::memory_order_relaxed);
}

void clear_level_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

}  // namespace repro::simd
