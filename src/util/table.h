// Plain-text table and CSV rendering for the benchmark harnesses, which
// print the same rows the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace repro {

/// Column alignment inside a rendered text table.
enum class Align { kLeft, kRight };

/// A simple text table: set headers, append rows, render aligned columns.
/// Rows shorter than the header are padded with empty cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; it may have at most as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Sets alignment for one column (default: left for col 0, right otherwise).
  void set_align(std::size_t column, Align align);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with column separators and a header rule.
  std::string render() const;

  /// Renders as RFC-4180-style CSV (quotes fields containing , " or newline).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
};

/// Writes `content` to `path`, creating parent directories when needed.
/// Throws repro::Error on I/O failure.
void write_file(const std::string& path, const std::string& content);

/// Appends `content` to `path` (created along with parent directories when
/// missing). Throws repro::Error on I/O failure. Used for JSONL history
/// files such as bench_output/HISTORY.jsonl.
void append_file(const std::string& path, const std::string& content);

/// append_file, then -- when max_lines > 0 and the file now holds more than
/// max_lines newline-terminated lines -- rewrites it keeping only the
/// newest max_lines. 0 means unbounded (a plain append). This is the
/// REPRO_HISTORY_MAX_LINES retention cap for JSONL histories; the trim is
/// read-rewrite, not atomic, which matches the history files' best-effort
/// local-only contract (concurrent appenders already interleave).
void append_file_capped(const std::string& path, const std::string& content,
                        std::size_t max_lines);

}  // namespace repro
