#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace repro {

namespace {

char lower_char(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string to_lower(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  for (const char c : input) out.push_back(lower_char(c));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(std::span<const std::string> parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative wildcard matcher with backtracking over the last '*'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_text = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || lower_char(pattern[p]) == lower_char(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool tls_name_match(std::string_view pattern, std::string_view name) noexcept {
  if (starts_with(pattern, "*.")) {
    const std::string_view base = pattern.substr(2);
    const std::size_t dot = name.find('.');
    if (dot == std::string_view::npos || dot == 0) return false;
    const std::string_view rest = name.substr(dot + 1);
    return to_lower(rest) == to_lower(base);
  }
  return to_lower(pattern) == to_lower(name);
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int since_group = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_group == 3) {
      out.push_back(',');
      since_group = 0;
    }
    out.push_back(*it);
    ++since_group;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string format_fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace repro
