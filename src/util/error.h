// Error types shared across the reproduction library.
#pragma once

#include <stdexcept>
#include <string>

namespace repro {

/// Base exception for all library errors. Thrown on contract violations
/// (bad arguments, malformed inputs) and impossible internal states.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input string (IP address, prefix, hostname pattern, ...)
/// cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Thrown when a lookup misses (unknown ASN, unknown country code, ...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// Throws repro::Error with `what` if `condition` is false.
/// Used to check preconditions on public API entry points.
void require(bool condition, const std::string& what);

}  // namespace repro
