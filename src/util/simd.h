// Runtime SIMD dispatch for the hand-vectorized hot-path kernels.
//
// The distance kernel (src/cluster) is compiled once per instruction-set
// level in its own translation unit; at run time the best level the CPU
// supports is selected here. Every level is bit-identical by contract (the
// canonical-ordering rules in docs/PERFORMANCE.md), so dispatch is purely a
// throughput decision -- tests pin levels with set_level_override to prove
// the identity.
//
// Env toggle: REPRO_SIMD=scalar|sse2|avx2|avx512 caps the level (requests
// above what the CPU supports clamp down; unknown values are ignored with a
// warning). The override API below takes precedence over the environment.
#pragma once

#include <optional>
#include <string_view>

namespace repro::simd {

/// Instruction-set levels the kernels are compiled for, ascending. On
/// non-x86 builds only kScalar is available.
enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

std::string_view to_string(SimdLevel level) noexcept;

/// Parses "scalar" / "sse2" / "avx2" / "avx512"; nullopt otherwise.
std::optional<SimdLevel> parse_level(std::string_view name) noexcept;

/// Highest level this CPU can execute (detected once via cpuid).
SimdLevel highest_supported() noexcept;

/// The level the kernels dispatch on: the override if set, else the
/// REPRO_SIMD cap, else highest_supported(). Never above highest_supported().
SimdLevel active_level() noexcept;

/// Pins the active level (clamped to highest_supported()); used by the
/// cross-level identity tests and the phase profiler. Not thread-safe
/// against concurrent kernel launches -- set it between runs.
void set_level_override(SimdLevel level) noexcept;
void clear_level_override() noexcept;

}  // namespace repro::simd
