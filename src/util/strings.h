// Small string utilities: case conversion, splitting, joining, glob-style
// wildcard matching (for certificate name patterns), and numeric formatting.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// ASCII lowercase copy.
std::string to_lower(std::string_view input);

/// True if `text` starts with / ends with `affix` (ASCII, case-sensitive).
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Joins strings with a separator.
std::string join(std::span<const std::string> parts, std::string_view separator);

/// Glob match with '*' (any run, including empty) and '?' (any one char).
/// Case-insensitive, because DNS names are. Used for certificate-name
/// patterns like "*.fbcdn.net" and "*.googlevideo.com".
bool glob_match(std::string_view pattern, std::string_view text) noexcept;

/// True if `name` matches `pattern` under TLS wildcard rules: a leading
/// "*." matches exactly one additional label ("*.x.com" matches "a.x.com"
/// but not "a.b.x.com" or "x.com"); otherwise requires case-insensitive
/// equality.
bool tls_name_match(std::string_view pattern, std::string_view name) noexcept;

/// "12345" -> "12,345" (thousands separators, for table output).
std::string with_commas(long long value);

/// Fixed-decimal formatting, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int decimals);

/// Percentage with `decimals` digits, e.g. format_percent(0.3821, 1) == "38.2%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace repro
