// Deterministic random number generation.
//
// Every stochastic component of the reproduction takes an explicit Rng (or a
// seed) so that a whole experiment is reproducible from a single 64-bit seed.
// The generator is xoshiro256**, seeded via splitmix64, following the
// reference implementations by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace repro {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t value) noexcept;

/// Deterministic xoshiro256** generator with convenience distributions.
///
/// Not a std-style URBG on purpose: the distribution implementations in
/// libstdc++ are not stable across versions, and we need bit-for-bit
/// reproducible experiments. All distributions here are hand-rolled.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;

  /// Derives an independent child generator; `stream` distinguishes children
  /// created from the same parent state (e.g. one child per ISP id).
  Rng fork(std::uint64_t stream) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Normal with mean/stddev. Requires stddev >= 0.
  double normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu_log, sigma_log)). Requires sigma_log >= 0.
  double lognormal(double mu_log, double sigma_log);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Pareto with scale x_min > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double x_min, double alpha);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf sampler over ranks 1..n with exponent s, using precomputed CDF.
/// Models popularity skew (content popularity, ISP sizes).
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0.
  ZipfSampler(std::size_t n, double s);

  /// Rank in [1, n]; rank 1 is most popular.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace repro
