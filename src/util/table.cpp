#include "util/table.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/error.h"

namespace repro {

namespace {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "TextTable: need at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() <= headers_.size(), "TextTable: row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  require(column < aligns_.size(), "TextTable::set_align: column out of range");
  aligns_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_cell = [&](const std::string& cell, std::size_t c) {
    const std::size_t pad = widths[c] - cell.size();
    if (aligns_[c] == Align::kLeft) return cell + std::string(pad, ' ');
    return std::string(pad, ' ') + cell;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "  ";
    out += render_cell(headers_[c], c);
  }
  out += '\n';
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule_width += widths[c] + (c > 0 ? 2 : 0);
  out += std::string(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += render_cell(row[c], c);
    }
    out += '\n';
  }
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += ',';
    out += csv_escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    require(!ec, "write_file: cannot create directories for " + path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(static_cast<bool>(out), "write_file: cannot open " + path);
  out << content;
  require(static_cast<bool>(out), "write_file: write failed for " + path);
}

void append_file(const std::string& path, const std::string& content) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
    require(!ec, "append_file: cannot create directories for " + path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  require(static_cast<bool>(out), "append_file: cannot open " + path);
  out << content;
  require(static_cast<bool>(out), "append_file: write failed for " + path);
}

void append_file_capped(const std::string& path, const std::string& content,
                        std::size_t max_lines) {
  append_file(path, content);
  if (max_lines == 0) return;

  std::ifstream in(path, std::ios::binary);
  require(static_cast<bool>(in), "append_file_capped: cannot reopen " + path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  in.close();

  std::size_t lines = 0;
  for (const char c : all) {
    if (c == '\n') ++lines;
  }
  if (!all.empty() && all.back() != '\n') ++lines;  // unterminated tail line
  if (lines <= max_lines) return;

  // Drop the oldest (lines - max_lines) lines: find the offset just past
  // that many newlines and rewrite the rest.
  std::size_t drop = lines - max_lines;
  std::size_t offset = 0;
  while (drop > 0 && offset < all.size()) {
    if (all[offset] == '\n') --drop;
    ++offset;
  }
  write_file(path, all.substr(offset));
}

}  // namespace repro
