// Geographic primitives: coordinates, great-circle distance, and the
// speed-of-light latency bounds used by the measurement filters.
#pragma once

#include <string>

namespace repro {

/// A point on the Earth's surface (WGS84-ish sphere approximation).
struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;

  bool operator==(const GeoPoint&) const = default;
};

/// Mean Earth radius in kilometers (spherical approximation).
inline constexpr double kEarthRadiusKm = 6371.0;

/// Speed of light in fiber, km per millisecond (~2/3 c).
inline constexpr double kFiberKmPerMs = 200.0;

/// Great-circle distance in kilometers (haversine formula).
double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Minimum possible round-trip time in milliseconds between two points,
/// assuming straight-line fiber: 2 * distance / speed-of-light-in-fiber.
double min_rtt_ms(const GeoPoint& a, const GeoPoint& b) noexcept;

/// One-way propagation delay in ms along `distance_km` of fiber.
double propagation_ms(double distance_km) noexcept;

/// True if an RTT measurement is physically possible between two points
/// (i.e. rtt >= speed-of-light bound, with `tolerance_ms` slack for
/// clock/queueing measurement error in the *fast* direction).
bool rtt_physically_possible(const GeoPoint& a, const GeoPoint& b,
                             double rtt_ms, double tolerance_ms = 0.0) noexcept;

/// Deterministically jitters a point by up to `radius_km`, used to place
/// facilities around a metro center. `u1`, `u2` are uniform draws in [0,1).
GeoPoint jitter_point(const GeoPoint& center, double radius_km, double u1,
                      double u2) noexcept;

/// Renders "lat,lon" with 4 decimals, for debugging and CSV output.
std::string to_string(const GeoPoint& point);

}  // namespace repro
