#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/error.h"

namespace repro {

namespace {

/// True while this thread executes a pool task or a parallel_for body, so
/// nested parallel loops serialize instead of blocking the pool on itself.
thread_local bool t_in_parallel_region = false;

/// REPRO_THREADS, or 0 when unset/unparseable.
std::size_t env_thread_count() noexcept {
  const char* value = std::getenv("REPRO_THREADS");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return 0;
  return static_cast<std::size_t>(parsed);
}

std::atomic<std::size_t>& override_count() noexcept {
  static std::atomic<std::size_t> count{0};
  return count;
}

/// Installed hooks, guarded by a mutex only on write; reads snapshot the
/// three pointers individually (relaxed: installation happens at load time,
/// before any pool traffic).
std::atomic<void* (*)() noexcept> g_on_submit{nullptr};
std::atomic<void* (*)(void*) noexcept> g_on_run_begin{nullptr};
std::atomic<void (*)(void*, void*) noexcept> g_on_run_end{nullptr};

}  // namespace

void set_task_hooks(const TaskHooks& hooks) noexcept {
  g_on_submit.store(hooks.on_submit, std::memory_order_release);
  g_on_run_begin.store(hooks.on_run_begin, std::memory_order_release);
  g_on_run_end.store(hooks.on_run_end, std::memory_order_release);
}

std::size_t hardware_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t default_thread_count() noexcept {
  const std::size_t forced = override_count().load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const std::size_t from_env = env_thread_count();
  if (from_env > 0) return from_env;
  return hardware_thread_count();
}

void set_default_thread_count(std::size_t count) noexcept {
  override_count().store(count, std::memory_order_relaxed);
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::function<void()>> queue;
  std::vector<std::thread> workers;
  bool stop = false;
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  require(workers >= 1, "ThreadPool: need at least one worker");
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->ready.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->workers.size();
}

void ThreadPool::submit(std::function<void()> task) {
  // Span-context propagation: capture the submitting thread's context (a
  // null token -- tracing off, no open span -- leaves the task unwrapped).
  if (auto* on_submit = g_on_submit.load(std::memory_order_acquire)) {
    if (void* token = on_submit()) {
      auto* begin = g_on_run_begin.load(std::memory_order_acquire);
      auto* end = g_on_run_end.load(std::memory_order_acquire);
      task = [inner = std::move(task), begin, end, token] {
        void* scope = begin != nullptr ? begin(token) : nullptr;
        inner();
        if (end != nullptr) end(token, scope);
      };
    }
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
  }
  impl_->ready.notify_one();
}

void ThreadPool::worker_loop() {
  // Workers only ever run pool tasks, so the flag can stay set for the
  // thread's whole lifetime.
  t_in_parallel_region = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->ready.wait(lock,
                        [this] { return impl_->stop || !impl_->queue.empty(); });
      if (impl_->queue.empty()) return;  // stop requested and queue drained
      task = std::move(impl_->queue.front());
      impl_->queue.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    // Cover the hardware, any REPRO_THREADS oversubscription, and the
    // 8-thread determinism tests on small machines; idle workers just park
    // on the queue condvar.
    std::size_t workers =
        std::max({hardware_thread_count(), env_thread_count(),
                  std::size_t{8}});
    return std::min<std::size_t>(workers, 64);
  }());
  return pool;
}

bool ThreadPool::in_parallel_region() noexcept { return t_in_parallel_region; }

void parallel_for_blocks(std::size_t count, std::size_t block,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t threads) {
  if (count == 0) return;
  if (block == 0) block = 1;
  std::size_t workers = threads == 0 ? default_thread_count() : threads;
  workers = std::min(workers, (count + block - 1) / block);
  if (workers <= 1 || t_in_parallel_region) {
    // Serial fallback: threads=1, a single block, or a nested call from
    // inside another parallel region (which must not block the pool).
    body(0, count);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;
  } shared;

  // Dynamic scheduling: every participant pulls the next block off one
  // atomic cursor, so uneven block costs (e.g. the shrinking rows of an
  // upper-triangle sweep) balance themselves.
  const auto drain = [&shared, &body, count, block] {
    const bool saved = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (;;) {
        const std::size_t begin =
            shared.next.fetch_add(block, std::memory_order_relaxed);
        if (begin >= count) break;
        body(begin, std::min(begin + block, count));
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(shared.mutex);
      if (!shared.error) shared.error = std::current_exception();
    }
    t_in_parallel_region = saved;
  };

  const std::size_t helpers = workers - 1;
  for (std::size_t h = 0; h < helpers; ++h) {
    ThreadPool::shared().submit([&shared, &drain] {
      drain();
      std::lock_guard<std::mutex> lock(shared.mutex);
      ++shared.done;
      shared.done_cv.notify_one();
    });
  }
  drain();  // the caller participates instead of idling
  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done_cv.wait(lock, [&shared, helpers] { return shared.done == helpers; });
  }
  if (shared.error) std::rethrow_exception(shared.error);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  parallel_for_blocks(
      count, 1,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      threads);
}

}  // namespace repro
