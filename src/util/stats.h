// Descriptive statistics and distribution summaries used by the analysis
// pipeline and the experiment reports (CCDFs, percentiles, histograms).
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace repro {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> values) noexcept;

/// Population variance; 0 for inputs with fewer than 2 elements.
double variance(std::span<const double> values) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> values) noexcept;

/// Median (average of the two middle order statistics for even sizes).
/// Requires a non-empty input.
double median(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> values, double q);

/// One point of an empirical CCDF: fraction of mass with value >= x.
struct CcdfPoint {
  double x = 0.0;
  double fraction = 0.0;
};

/// Empirical weighted CCDF. `weights` may be empty (all weights 1) or must
/// match `values` in size. Points are sorted by x ascending; `fraction` at a
/// point x is the weighted fraction of samples with value >= x.
std::vector<CcdfPoint> weighted_ccdf(std::span<const double> values,
                                     std::span<const double> weights);

/// Evaluates a CCDF (as produced by weighted_ccdf) at x: the weighted
/// fraction of samples with value >= x.
double ccdf_at(const std::vector<CcdfPoint>& ccdf, double x) noexcept;

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, double weight = 1.0) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;
  double count(std::size_t i) const;
  double total() const noexcept { return total_; }
  /// count(i) / total(); 0 when empty.
  double fraction(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Streaming accumulator for min/max/mean/M2 (Welford).
class RunningStats {
 public:
  void add(double value) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace repro
