#include "util/error.h"

namespace repro {

void require(bool condition, const std::string& what) {
  if (!condition) throw Error(what);
}

}  // namespace repro
