#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace repro {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - m) * (v - m);
  return sum_sq / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept {
  return std::sqrt(variance(values));
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double percentile(std::span<const double> values, double q) {
  require(!values.empty(), "percentile: empty input");
  require(q >= 0.0 && q <= 100.0, "percentile: q outside [0, 100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto below = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(below);
  if (below + 1 >= sorted.size()) return sorted.back();
  return sorted[below] * (1.0 - frac) + sorted[below + 1] * frac;
}

std::vector<CcdfPoint> weighted_ccdf(std::span<const double> values,
                                     std::span<const double> weights) {
  require(weights.empty() || weights.size() == values.size(),
          "weighted_ccdf: weights size mismatch");
  std::vector<std::pair<double, double>> samples;
  samples.reserve(values.size());
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    require(w >= 0.0, "weighted_ccdf: negative weight");
    samples.emplace_back(values[i], w);
    total += w;
  }
  std::vector<CcdfPoint> result;
  if (samples.empty() || total <= 0.0) return result;
  std::sort(samples.begin(), samples.end());
  result.reserve(samples.size());
  // Walk ascending; mass >= x is total minus mass strictly below x.
  double mass_below = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!result.empty() && samples[i].first == result.back().x) {
      mass_below += samples[i].second;
      continue;
    }
    result.push_back({samples[i].first, (total - mass_below) / total});
    mass_below += samples[i].second;
  }
  return result;
}

double ccdf_at(const std::vector<CcdfPoint>& ccdf, double x) noexcept {
  // Find the first point with point.x >= x; its fraction is mass >= point.x,
  // and there is no mass between x and point.x, so that is mass >= x.
  for (const auto& point : ccdf) {
    if (point.x >= x) return point.fraction;
  }
  return 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  require(hi > lo, "Histogram: hi must exceed lo");
  require(bins >= 1, "Histogram: need at least one bin");
  counts_.assign(bins, 0.0);
}

void Histogram::add(double value, double weight) noexcept {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / span *
                                         static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

double Histogram::bucket_low(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_low: out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_high(std::size_t i) const {
  require(i < counts_.size(), "Histogram::bucket_high: out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::count(std::size_t i) const {
  require(i < counts_.size(), "Histogram::count: out of range");
  return counts_[i];
}

double Histogram::fraction(std::size_t i) const {
  return total_ > 0.0 ? count(i) / total_ : 0.0;
}

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace repro
