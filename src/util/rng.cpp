#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace repro {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t state = value;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) noexcept {
  return Rng(next() ^ mix64(stream));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased modulo via rejection sampling.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t draw = next();
  while (draw >= limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

bool Rng::chance(double p) noexcept {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: negative stddev");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  require(sigma_log >= 0.0, "Rng::lognormal: negative sigma");
  return std::exp(normal(mu_log, sigma_log));
}

double Rng::exponential(double lambda) {
  require(lambda > 0.0, "Rng::exponential: lambda must be positive");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

double Rng::pareto(double x_min, double alpha) {
  require(x_min > 0.0, "Rng::pareto: x_min must be positive");
  require(alpha > 0.0, "Rng::pareto: alpha must be positive");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_min / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  require(!weights.empty(), "Rng::weighted_index: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: negative weight");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: all weights zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: target rounded past the end
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_indices: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  require(n >= 1, "ZipfSampler: n must be >= 1");
  require(s >= 0.0, "ZipfSampler: exponent must be >= 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_[rank - 1] = total;
  }
  for (auto& value : cdf_) value /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace repro
