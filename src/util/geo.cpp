#include "util/geo.h"

#include <cmath>
#include <cstdio>
#include <numbers>

namespace repro {

namespace {

double deg_to_rad(double deg) noexcept { return deg * std::numbers::pi / 180.0; }

}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double lat1 = deg_to_rad(a.latitude_deg);
  const double lat2 = deg_to_rad(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.longitude_deg - a.longitude_deg);
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlon = std::sin(dlon / 2.0);
  const double h =
      sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_ms(double distance_km) noexcept {
  return distance_km / kFiberKmPerMs;
}

double min_rtt_ms(const GeoPoint& a, const GeoPoint& b) noexcept {
  return 2.0 * propagation_ms(haversine_km(a, b));
}

bool rtt_physically_possible(const GeoPoint& a, const GeoPoint& b, double rtt_ms,
                             double tolerance_ms) noexcept {
  return rtt_ms + tolerance_ms >= min_rtt_ms(a, b);
}

GeoPoint jitter_point(const GeoPoint& center, double radius_km, double u1,
                      double u2) noexcept {
  // Uniform in a disc: radius proportional to sqrt(u).
  const double r_km = radius_km * std::sqrt(u1);
  const double angle = 2.0 * std::numbers::pi * u2;
  const double dlat = (r_km * std::cos(angle)) / 111.0;  // ~111 km per degree
  const double cos_lat = std::max(0.1, std::cos(deg_to_rad(center.latitude_deg)));
  const double dlon = (r_km * std::sin(angle)) / (111.0 * cos_lat);
  return {center.latitude_deg + dlat, center.longitude_deg + dlon};
}

std::string to_string(const GeoPoint& point) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4f,%.4f", point.latitude_deg,
                point.longitude_deg);
  return buffer;
}

}  // namespace repro
