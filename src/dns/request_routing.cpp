#include "dns/request_routing.h"

#include "util/rng.h"
#include "util/strings.h"

namespace repro {

namespace {

/// The per-deployment site name (shared convention with the TLS certs).
std::string deployment_hostname(const Internet& internet,
                                const OffnetRegistry& registry, AsIndex isp,
                                Hypergiant hg, FacilityIndex facility) {
  const Metro& metro = internet.metro_of_facility(facility);
  const std::string site = std::to_string(10 + facility % 20);
  const std::string unit = std::to_string(1 + isp % 6);
  switch (hg) {
    case Hypergiant::kGoogle:
      return "r1---sn-" + metro.iata + site + ".googlevideo.com";
    case Hypergiant::kNetflix:
      return "ipv4-c001-" + metro.iata + site + "-isp.1.oca.nflxvideo.net";
    case Hypergiant::kMeta:
      return "scontent.f" + metro.iata + site + "-" + unit + ".fna.fbcdn.net";
    case Hypergiant::kAkamai:
      return "a" + std::to_string(200 + isp % 600) + "-" + metro.iata +
             ".deploy.akamaized.net";
  }
  (void)registry;
  return "cdn.example.net";
}

}  // namespace

RequestRouter::RequestRouter(const Internet& internet,
                             const OffnetRegistry& registry)
    : internet_(internet), registry_(registry) {
  // Precompute one embedded hostname per deployment, pointing at its first
  // server (the services hand out per-session server picks; one
  // representative is enough for the mapping analyses).
  for (const auto& [key, deployment] : registry_.deployments()) {
    if (deployment.server_indices.empty()) continue;
    const OffnetServer& server =
        registry_.servers()[deployment.server_indices.front()];
    const std::string hostname = deployment_hostname(
        internet_, registry_, key.first, key.second, server.facility);
    deployment_hostname_[key] = hostname;
    embedded_to_ip_.emplace(hostname, server.ip);
  }
}

Ipv4 RequestRouter::onnet_ip(Hypergiant hg) const {
  const AsIndex hg_as = internet_.as_by_asn(profile(hg).asn);
  // The onnet serving block starts at offset 1000 (see background.cpp).
  return internet_.ases[hg_as].infra.pool().at(1000);
}

Ipv4 RequestRouter::serving_ip(Hypergiant hg, Ipv4 client) const {
  const auto isp = internet_.as_of_ip(client);
  if (!isp) return onnet_ip(hg);
  const Deployment* deployment = registry_.find_deployment(*isp, hg);
  if (deployment == nullptr || deployment->server_indices.empty()) {
    return onnet_ip(hg);
  }
  // Stable per-/24 server pick inside the deployment.
  const std::uint64_t slot =
      mix64(client.value() >> 8) % deployment->server_indices.size();
  return registry_.servers()[deployment->server_indices[slot]].ip;
}

bool RequestRouter::serves_from_offnet(Hypergiant hg, Ipv4 client) const {
  const auto isp = internet_.as_of_ip(client);
  if (!isp) return false;
  return registry_.find_deployment(*isp, hg) != nullptr;
}

std::optional<std::string> RequestRouter::embedded_hostname(Hypergiant hg,
                                                            Ipv4 client) const {
  const auto isp = internet_.as_of_ip(client);
  if (!isp) return std::nullopt;
  const auto it = deployment_hostname_.find(std::make_pair(*isp, hg));
  if (it == deployment_hostname_.end()) return std::nullopt;
  return it->second;
}

std::optional<Ipv4> RequestRouter::ip_of_embedded_hostname(
    const std::string& hostname) const {
  const auto it = embedded_to_ip_.find(to_lower(hostname));
  if (it == embedded_to_ip_.end()) return std::nullopt;
  return it->second;
}

}  // namespace repro
