// The Calder et al. (IMC '13) EDNS-Client-Subnet mapping technique, and why
// it no longer works (Section 3.2): from a single vantage point, query the
// hypergiant's canonical hostname once per client /24 with an ECS option and
// collect the answers; every answer in a non-hypergiant AS is a discovered
// offnet, and the client-to-server map falls out for free. Run against the
// three redirection policies to show the technique's coverage collapse.
#pragma once

#include <cstdint>

#include "dns/authoritative.h"

namespace repro {

struct EcsMappingConfig {
  /// Client /24s sampled per access ISP.
  std::size_t prefixes_per_isp = 2;
  /// The study's resolver/vantage address (whether it is on the Akamai
  /// allowlist decides the kEcsAllowlist outcome).
  Ipv4 resolver = Ipv4(0x08080808u);
};

struct EcsMappingResult {
  Hypergiant hg = Hypergiant::kGoogle;
  RedirectionPolicy policy = RedirectionPolicy::kGeoDns2013;

  std::size_t prefixes_probed = 0;
  /// Probes answered with an address in a non-hypergiant AS (an offnet).
  std::size_t prefixes_mapped_to_offnet = 0;
  std::size_t distinct_offnet_ips = 0;
  std::size_t distinct_offnet_isps = 0;

  /// Recall against ground truth: of the ISPs that really host this
  /// hypergiant's offnets (and were probed), the fraction the technique
  /// identified as offnet-served.
  double isp_recall = 0.0;

  /// Fraction of probed prefixes whose ground truth is offnet service that
  /// the technique correctly mapped to an offnet.
  double prefix_recall = 0.0;
};

/// Runs the ECS sweep against one authoritative configuration.
EcsMappingResult ecs_mapping_study(const Internet& internet,
                                   const OffnetRegistry& registry,
                                   const RequestRouter& router,
                                   const AuthoritativeDns& dns,
                                   const EcsMappingConfig& config = {});

}  // namespace repro
