// Ground-truth request routing: which server (offnet or onnet) a hypergiant
// sends a given client to, and the per-client URL hostnames the 2023-era
// services embed in returned pages (e.g. fhan14-4.fna.fbcdn.net).
//
// Section 3.2 of the paper explains why the 2013 DNS-based mapping technique
// no longer reveals this assignment: Google/Netflix/Meta now embed custom
// URLs in web pages (visible only to actual clients), and Akamai answers
// EDNS-Client-Subnet only for allow-listed resolvers. This module models the
// assignment itself; dns/authoritative.h models what DNS will admit to.
#pragma once

#include <optional>
#include <string>

#include "hypergiant/deployment.h"

namespace repro {

class RequestRouter {
 public:
  RequestRouter(const Internet& internet, const OffnetRegistry& registry);

  /// The server that would deliver `hg` content to `client`: an offnet IP
  /// in the client's ISP when a deployment exists, otherwise an onnet IP.
  Ipv4 serving_ip(Hypergiant hg, Ipv4 client) const;

  /// True if `client` is served from an offnet (in-ISP) cache.
  bool serves_from_offnet(Hypergiant hg, Ipv4 client) const;

  /// The hostname a 2023-era service embeds in pages returned to `client`
  /// (resolves to serving_ip via the authoritative DNS). Nullopt when the
  /// client is served from onnet under a generic name.
  std::optional<std::string> embedded_hostname(Hypergiant hg, Ipv4 client) const;

  /// Reverse lookup used by the authoritative server: the serving IP a
  /// 2023-era embedded hostname designates, if it is one.
  std::optional<Ipv4> ip_of_embedded_hostname(const std::string& hostname) const;

  /// A stable onnet serving address for `hg`.
  Ipv4 onnet_ip(Hypergiant hg) const;

 private:
  const Internet& internet_;
  const OffnetRegistry& registry_;
  std::map<std::string, Ipv4> embedded_to_ip_;
  std::map<std::pair<AsIndex, Hypergiant>, std::string> deployment_hostname_;
};

}  // namespace repro
