#include "dns/authoritative.h"

#include "util/strings.h"

namespace repro {

namespace {

std::string canonical_for(Hypergiant hg) {
  switch (hg) {
    case Hypergiant::kGoogle: return "www.google.com";
    case Hypergiant::kNetflix: return "www.netflix.com";
    case Hypergiant::kMeta: return "www.facebook.com";
    case Hypergiant::kAkamai: return "a248.e.akamai.net";
  }
  return "cdn.example.net";
}

}  // namespace

std::string_view to_string(RedirectionPolicy policy) noexcept {
  switch (policy) {
    case RedirectionPolicy::kGeoDns2013: return "geo-dns-2013";
    case RedirectionPolicy::kEmbeddedUrl2023: return "embedded-url-2023";
    case RedirectionPolicy::kEcsAllowlist: return "ecs-allowlist";
  }
  return "?";
}

AuthoritativeDns::AuthoritativeDns(const RequestRouter& router, Hypergiant hg,
                                   RedirectionPolicy policy,
                                   std::set<Ipv4> ecs_allowlist)
    : router_(router),
      hg_(hg),
      policy_(policy),
      ecs_allowlist_(std::move(ecs_allowlist)),
      canonical_(canonical_for(hg)) {}

std::optional<DnsAnswer> AuthoritativeDns::resolve(
    const std::string& hostname, Ipv4 resolver,
    std::optional<Prefix> ecs) const {
  const std::string name = to_lower(hostname);

  // Embedded per-deployment hostnames resolve to their server everywhere
  // (they already encode the site); real clients learn them in-band.
  if (const auto embedded = router_.ip_of_embedded_hostname(name)) {
    return DnsAnswer{*embedded};
  }

  if (name != canonical_) return std::nullopt;

  const Ipv4 effective_client = ecs ? ecs->network() : resolver;
  switch (policy_) {
    case RedirectionPolicy::kGeoDns2013:
      return DnsAnswer{router_.serving_ip(hg_, effective_client)};
    case RedirectionPolicy::kEmbeddedUrl2023:
      // The web hostname lives onnet/cloud; the offnet assignment is only
      // visible inside returned pages.
      return DnsAnswer{router_.onnet_ip(hg_)};
    case RedirectionPolicy::kEcsAllowlist:
      if (ecs && ecs_allowlist_.contains(resolver)) {
        return DnsAnswer{router_.serving_ip(hg_, effective_client)};
      }
      return DnsAnswer{router_.onnet_ip(hg_)};
  }
  return std::nullopt;
}

}  // namespace repro
