// The hypergiant's authoritative DNS under three redirection eras:
//
//   * kGeoDns2013      -- the canonical hostname (www.google.com style)
//                         resolves to the serving front-end for the querying
//                         client (via EDNS-Client-Subnet when present, else
//                         the resolver's address). This is what made the
//                         Calder et al. 2013 ECS mapping technique work.
//   * kEmbeddedUrl2023 -- the canonical hostname always resolves to onnet;
//                         offnets are reachable only through per-deployment
//                         hostnames embedded in pages served to real clients
//                         (Google/Netflix/Meta today).
//   * kEcsAllowlist    -- geo answers only for allow-listed resolvers
//                         (Akamai today); everyone else gets onnet.
#pragma once

#include <optional>
#include <set>
#include <string>

#include "dns/request_routing.h"

namespace repro {

enum class RedirectionPolicy : std::uint8_t {
  kGeoDns2013 = 0,
  kEmbeddedUrl2023,
  kEcsAllowlist,
};

std::string_view to_string(RedirectionPolicy policy) noexcept;

/// A DNS A-record answer.
struct DnsAnswer {
  Ipv4 ip;
};

class AuthoritativeDns {
 public:
  AuthoritativeDns(const RequestRouter& router, Hypergiant hg,
                   RedirectionPolicy policy,
                   std::set<Ipv4> ecs_allowlist = {});

  /// The service's canonical public hostname (what the 2013 technique
  /// queried).
  const std::string& canonical_hostname() const noexcept { return canonical_; }

  /// Resolves `hostname` for a query arriving from `resolver`, optionally
  /// carrying an EDNS-Client-Subnet `ecs` prefix. Unknown names get no
  /// answer.
  std::optional<DnsAnswer> resolve(const std::string& hostname, Ipv4 resolver,
                                   std::optional<Prefix> ecs) const;

  RedirectionPolicy policy() const noexcept { return policy_; }

 private:
  const RequestRouter& router_;
  Hypergiant hg_;
  RedirectionPolicy policy_;
  std::set<Ipv4> ecs_allowlist_;
  std::string canonical_;
};

}  // namespace repro
