#include "dns/mapping_study.h"

#include <array>
#include <set>

#include "util/error.h"

namespace repro {

EcsMappingResult ecs_mapping_study(const Internet& internet,
                                   const OffnetRegistry& registry,
                                   const RequestRouter& router,
                                   const AuthoritativeDns& dns,
                                   const EcsMappingConfig& config) {
  require(config.prefixes_per_isp >= 1, "ecs_mapping_study: need probes");
  EcsMappingResult result;
  result.policy = dns.policy();

  // Identify the hypergiant whose DNS we are sweeping via the router's
  // ground truth (any client works; use recall bookkeeping below).
  std::set<Ipv4> offnet_ips;
  std::set<AsIndex> offnet_isps;
  std::size_t truth_offnet_prefixes = 0;
  std::size_t recalled_prefixes = 0;
  std::set<AsIndex> truth_isps_probed;
  std::set<AsIndex> truth_isps_recalled;

  // The study must not use ground truth for *inference* -- only IP-to-AS
  // (public BGP data) to decide whether an answer is an offnet.
  std::array<AsIndex, kHypergiantCount> hg_ases{};
  for (const Hypergiant hg : all_hypergiants()) {
    hg_ases[static_cast<std::size_t>(hg)] = internet.as_by_asn(profile(hg).asn);
  }
  Hypergiant hg = Hypergiant::kGoogle;
  // Recover which hypergiant this DNS belongs to from its canonical name.
  for (const Hypergiant candidate : all_hypergiants()) {
    const AuthoritativeDns probe(router, candidate, dns.policy());
    if (probe.canonical_hostname() == dns.canonical_hostname()) hg = candidate;
  }
  result.hg = hg;

  for (const AsIndex isp : internet.access_isps()) {
    const As& as = internet.ases[isp];
    if (as.user_prefixes.empty()) continue;
    const Prefix& space = as.user_prefixes.front();
    const std::uint64_t slash24s = std::max<std::uint64_t>(1, space.size() / 256);
    const bool truth_hosts = registry.find_deployment(isp, hg) != nullptr;

    for (std::size_t p = 0; p < config.prefixes_per_isp && p < slash24s; ++p) {
      const Prefix client_prefix(space.at(p * 256), 24);
      ++result.prefixes_probed;
      if (truth_hosts) {
        ++truth_offnet_prefixes;
        truth_isps_probed.insert(isp);
      }

      const auto answer =
          dns.resolve(dns.canonical_hostname(), config.resolver, client_prefix);
      if (!answer) continue;
      const auto owner = internet.as_of_ip(answer->ip);
      if (!owner) continue;
      const bool in_hg_as =
          std::find(hg_ases.begin(), hg_ases.end(), *owner) != hg_ases.end();
      if (in_hg_as) continue;  // onnet answer: nothing learned

      ++result.prefixes_mapped_to_offnet;
      offnet_ips.insert(answer->ip);
      offnet_isps.insert(*owner);
      if (truth_hosts) {
        ++recalled_prefixes;
        truth_isps_recalled.insert(isp);
      }
    }
  }

  result.distinct_offnet_ips = offnet_ips.size();
  result.distinct_offnet_isps = offnet_isps.size();
  if (truth_offnet_prefixes > 0) {
    result.prefix_recall =
        static_cast<double>(recalled_prefixes) / truth_offnet_prefixes;
  }
  if (!truth_isps_probed.empty()) {
    result.isp_recall = static_cast<double>(truth_isps_recalled.size()) /
                        truth_isps_probed.size();
  }
  return result;
}

}  // namespace repro
